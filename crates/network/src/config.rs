//! Simulator configuration: the paper's hardware constants.

use serde::{Deserialize, Serialize};
use wormcast_sim::SimDuration;

/// When a message's channels are given back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReleaseMode {
    /// Wormhole blocking-in-place: every channel the header has acquired is
    /// held until the tail completes at the final destination. A blocked
    /// message therefore stalls its whole upstream path — the physically
    /// faithful wormhole model (1-flit router buffers).
    PathHolding,
    /// Virtual cut-through–style facility queueing: each channel is released
    /// one body-time after the header crossed it (the tail has drained), and
    /// a blocked header waits in the next channel's queue without holding
    /// anything upstream. This is the channel-queue model of the paper's
    /// CSIM/MultiSim simulator ("each channel has a single queue where
    /// messages are held while awaiting transmission").
    AfterTailCrossing,
}

/// Timing and router-architecture parameters of a simulated network.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Message start-up latency Ts, charged at the source for every
    /// message-passing step. The paper uses 0.15 µs and 1.5 µs (§3),
    /// consistent with Cray T3D-era technology.
    pub startup: SimDuration,
    /// Per-flit channel transmission time β. The paper uses 0.003 µs.
    pub flit_time: SimDuration,
    /// Routing-decision delay charged per hop as the header passes a router.
    /// Wormhole routers make this a single cycle; defaults to one flit time.
    pub routing_delay: SimDuration,
    /// Injection ports per node: how many messages a node can be sending at
    /// once. RD is studied on a one-port model, EDN assumes a three-port
    /// router (§2), and DB/AB need two ports for their first step.
    pub inject_ports: usize,
    /// Channel release discipline (wormhole path-holding vs the paper's
    /// facility-queueing model).
    pub release: ReleaseMode,
    /// Run [`crate::engine::Network::check_invariants`] even in release
    /// builds. Debug builds always check; release builds skip the O(network)
    /// walk unless this is set.
    pub check_invariants: bool,
}

impl NetworkConfig {
    /// The paper's baseline: Ts = 1.5 µs, β = 0.003 µs, one routing cycle per
    /// hop, and a generous 6-port (all-port, one per mesh direction in 3D)
    /// injection model.
    pub fn paper_default() -> Self {
        NetworkConfig {
            startup: SimDuration::from_us(1.5),
            flit_time: SimDuration::from_us(0.003),
            routing_delay: SimDuration::from_us(0.003),
            inject_ports: 6,
            release: ReleaseMode::PathHolding,
            check_invariants: false,
        }
    }

    /// The paper's low start-up variant: Ts = 0.15 µs.
    pub fn paper_low_startup() -> Self {
        NetworkConfig {
            startup: SimDuration::from_us(0.15),
            ..Self::paper_default()
        }
    }

    /// Override the start-up latency.
    pub fn with_startup(mut self, ts: SimDuration) -> Self {
        self.startup = ts;
        self
    }

    /// Override the channel-release discipline.
    pub fn with_release(mut self, mode: ReleaseMode) -> Self {
        self.release = mode;
        self
    }

    /// Override the injection-port count.
    ///
    /// # Panics
    /// Panics if `ports` is zero.
    pub fn with_ports(mut self, ports: usize) -> Self {
        assert!(ports > 0, "a node needs at least one injection port");
        self.inject_ports = ports;
        self
    }

    /// Enable invariant checking in release builds (see the
    /// [`NetworkConfig::check_invariants`] field).
    pub fn with_invariant_checks(mut self, on: bool) -> Self {
        self.check_invariants = on;
        self
    }

    /// Time for a message body of `len` flits to drain past a point once the
    /// header has arrived.
    pub fn body_time(&self, len: u64) -> SimDuration {
        self.flit_time.times(len)
    }

    /// Per-hop header latency: one routing decision plus one channel crossing.
    pub fn hop_time(&self) -> SimDuration {
        self.routing_delay + self.flit_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let c = NetworkConfig::paper_default();
        assert_eq!(c.startup.as_ps(), 1_500_000);
        assert_eq!(c.flit_time.as_ps(), 3_000);
        assert_eq!(NetworkConfig::paper_low_startup().startup.as_ps(), 150_000);
    }

    #[test]
    fn body_time_scales_with_length() {
        let c = NetworkConfig::paper_default();
        assert_eq!(c.body_time(100).as_ps(), 300_000);
        assert_eq!(c.body_time(0).as_ps(), 0);
    }

    #[test]
    fn hop_time_is_route_plus_cross() {
        let c = NetworkConfig::paper_default();
        assert_eq!(c.hop_time().as_ps(), 6_000);
    }

    #[test]
    #[should_panic(expected = "at least one injection port")]
    fn zero_ports_rejected() {
        let _ = NetworkConfig::paper_default().with_ports(0);
    }
}
