//! Engine behaviour tests: zero-load latency closed forms, contention,
//! multidestination absorb-and-forward, port serialisation, determinism.

use crate::{Delivery, MessageSpec, Network, NetworkConfig, OpId, ReleaseMode, Route};
use wormcast_routing::{dor_path, CodedPath, DimensionOrdered, PlanarWestFirst, WestFirst};
use wormcast_sim::{SimDuration, SimTime};
use wormcast_topology::{Coord, Mesh, NodeId, Topology};

fn net2d(side: u16) -> Network {
    Network::new(
        Mesh::square(side),
        NetworkConfig::paper_default(),
        Box::new(DimensionOrdered),
    )
}

fn unicast_spec(net: &Network, src: NodeId, dst: NodeId, len: u64, op: u64) -> MessageSpec {
    let p = dor_path(net.mesh(), src, dst);
    MessageSpec {
        src,
        route: Route::Fixed(CodedPath::unicast(net.mesh(), p)),
        length: len,
        op: OpId(op),
        tag: 0,
        charge_startup: true,
    }
}

/// Latency of an uncontended wormhole unicast:
/// Ts + D·(routing + β) + L·β.
fn zero_load_latency(cfg: &NetworkConfig, hops: u64, len: u64) -> SimDuration {
    cfg.startup + cfg.hop_time().times(hops) + cfg.body_time(len)
}

#[test]
fn zero_load_unicast_matches_closed_form() {
    let mut net = net2d(8);
    let m = net.mesh().clone();
    let src = m.node_at(&Coord::xy(0, 0));
    let dst = m.node_at(&Coord::xy(5, 3));
    let spec = unicast_spec(&net, src, dst, 64, 0);
    net.inject_at(SimTime::ZERO, spec);
    net.run_until_idle();
    let ds = net.drain_deliveries();
    assert_eq!(ds.len(), 1);
    let d = ds[0];
    assert_eq!(d.node, dst);
    let expect = zero_load_latency(net.config(), 8, 64);
    assert_eq!(d.latency(), expect);
    net.check_invariants();
}

#[test]
fn distance_insensitivity_of_wormhole() {
    // Doubling the distance adds only D·hop_time, not D·L·β: the hallmark
    // of wormhole switching the paper leans on.
    let cfg = NetworkConfig::paper_default();
    let lat = |hops: u64| zero_load_latency(&cfg, hops, 1024).as_ps();
    let d_short = lat(2);
    let d_long = lat(14);
    assert_eq!(d_long - d_short, 12 * cfg.hop_time().as_ps());
    // and the body dominates: body is 1024·3ns ≈ 3.07us vs 12·6ns of hops.
    assert!(d_long - d_short < cfg.body_time(1024).as_ps() / 40);
}

#[test]
fn gather_all_delivers_along_path_in_one_step() {
    let mut net = net2d(8);
    let m = net.mesh().clone();
    let nodes: Vec<NodeId> = (0..6).map(|x| m.node_at(&Coord::xy(x, 2))).collect();
    let path = wormcast_routing::Path::through(&m, &nodes);
    let cp = CodedPath::gather_all(&m, path);
    net.inject_at(
        SimTime::ZERO,
        MessageSpec {
            src: nodes[0],
            route: Route::Fixed(cp),
            length: 32,
            op: OpId(1),
            tag: 7,
            charge_startup: true,
        },
    );
    net.run_until_idle();
    let ds = net.drain_deliveries();
    assert_eq!(ds.len(), 5, "every node after the source receives");
    let cfg = *net.config();
    for (i, d) in ds.iter().enumerate() {
        let hops = i as u64 + 1;
        assert_eq!(d.node, nodes[i + 1]);
        assert_eq!(d.tag, 7);
        assert_eq!(
            d.latency(),
            zero_load_latency(&cfg, hops, 32),
            "receiver {i} sees pipelined arrival"
        );
    }
    // Arrival spread along the path is one hop_time per hop: receivers get
    // the message nearly simultaneously relative to body time.
    let spread = ds.last().unwrap().delivered_at.since(ds[0].delivered_at);
    assert_eq!(spread, cfg.hop_time().times(4));
}

#[test]
fn channel_contention_serialises_messages() {
    let mut net = net2d(8);
    let m = net.mesh().clone();
    // Two messages from different sources crossing the same channel
    // (3,0)->(4,0): one from (0,0) to (7,0), one from (3,0) to (7,0)... the
    // second starts at (3,0) and must wait for the first to release.
    let a_src = m.node_at(&Coord::xy(0, 0));
    let b_src = m.node_at(&Coord::xy(3, 0));
    let dst = m.node_at(&Coord::xy(7, 0));
    let a = unicast_spec(&net, a_src, dst, 128, 0);
    let b = unicast_spec(&net, b_src, dst, 128, 1);
    net.inject_at(SimTime::ZERO, a);
    net.inject_at(SimTime::ZERO, b);
    net.run_until_idle();
    let ds = net.drain_deliveries();
    assert_eq!(ds.len(), 2);
    let cfg = *net.config();
    let a_del = ds.iter().find(|d| d.op == OpId(0)).unwrap();
    let b_del = ds.iter().find(|d| d.op == OpId(1)).unwrap();
    // A runs uncontended (it reaches x=3 before B's header does? Both start
    // with the same Ts; A needs 3 hops to reach (3,0), B acquires its first
    // channel immediately — so actually B wins the shared channel and A
    // waits. Either way, exactly one of them pays a blocking delay.)
    let a_free = zero_load_latency(&cfg, 7, 128);
    let b_free = zero_load_latency(&cfg, 4, 128);
    let a_late = a_del.latency() > a_free;
    let b_late = b_del.latency() > b_free;
    assert!(
        a_late ^ b_late,
        "exactly one message should be delayed: a_late={a_late} b_late={b_late}"
    );
    net.check_invariants();
}

#[test]
fn blocked_message_resumes_after_release() {
    let mut net = net2d(4);
    let m = net.mesh().clone();
    let dst = m.node_at(&Coord::xy(3, 0));
    // B's startup completes at 0.5 + 1.5 = 2.0us, while A (injected at 0)
    // holds the shared channel until it completes at 2.28us — so B waits.
    let b_inject = SimTime::from_us(0.5);
    let a = unicast_spec(&net, m.node_at(&Coord::xy(1, 0)), dst, 256, 0);
    let b = unicast_spec(&net, m.node_at(&Coord::xy(2, 0)), dst, 16, 1);
    net.inject_at(SimTime::ZERO, a);
    net.inject_at(b_inject, b);
    net.run_until_idle();
    let ds = net.drain_deliveries();
    let cfg = *net.config();
    let a_del = ds.iter().find(|d| d.op == OpId(0)).unwrap();
    let b_del = ds.iter().find(|d| d.op == OpId(1)).unwrap();
    assert_eq!(a_del.latency(), zero_load_latency(&cfg, 2, 256));
    // B's channel (2,0)->(3,0) is held until A completes; then B crosses.
    let b_expect = a_del.delivered_at.since(b_inject) + cfg.hop_time() + cfg.body_time(16);
    assert_eq!(b_del.latency(), b_expect);
    assert!(
        b_del.latency() > zero_load_latency(&cfg, 1, 16),
        "B was blocked"
    );
}

#[test]
fn single_port_serialises_startup() {
    let mesh = Mesh::square(4);
    let cfg = NetworkConfig::paper_default().with_ports(1);
    let mut net = Network::new(mesh, cfg, Box::new(DimensionOrdered));
    let m = net.mesh().clone();
    let src = m.node_at(&Coord::xy(0, 0));
    let a = unicast_spec(&net, src, m.node_at(&Coord::xy(3, 0)), 64, 0);
    let b = unicast_spec(&net, src, m.node_at(&Coord::xy(0, 3)), 64, 1);
    net.inject_at(SimTime::ZERO, a);
    net.inject_at(SimTime::ZERO, b);
    net.run_until_idle();
    let ds = net.drain_deliveries();
    let b_del = ds.iter().find(|d| d.op == OpId(1)).unwrap();
    // Port frees when A's tail leaves the source: Ts + hop + body. Then B
    // pays its own Ts.
    let expect = cfg.startup
        + cfg.hop_time()
        + cfg.body_time(64)
        + cfg.startup
        + cfg.hop_time().times(3)
        + cfg.body_time(64);
    assert_eq!(b_del.latency(), expect);
}

#[test]
fn multi_port_sends_concurrently() {
    let mesh = Mesh::square(4);
    let cfg = NetworkConfig::paper_default().with_ports(2);
    let mut net = Network::new(mesh, cfg, Box::new(DimensionOrdered));
    let m = net.mesh().clone();
    let src = m.node_at(&Coord::xy(0, 0));
    let a = unicast_spec(&net, src, m.node_at(&Coord::xy(3, 0)), 64, 0);
    let b = unicast_spec(&net, src, m.node_at(&Coord::xy(0, 3)), 64, 1);
    net.inject_at(SimTime::ZERO, a);
    net.inject_at(SimTime::ZERO, b);
    net.run_until_idle();
    let ds = net.drain_deliveries();
    for d in &ds {
        assert_eq!(
            d.latency(),
            zero_load_latency(&cfg, 3, 64),
            "both proceed in parallel"
        );
    }
}

#[test]
fn adaptive_west_first_takes_free_alternative() {
    let mesh = Mesh::square(4);
    let cfg = NetworkConfig::paper_default();
    let mut net = Network::new(mesh, cfg, Box::new(WestFirst));
    let m = net.mesh().clone();
    // Blocker: a long message owning the east channel out of (0,0).
    let blocker = unicast_spec(
        &net,
        m.node_at(&Coord::xy(0, 0)),
        m.node_at(&Coord::xy(3, 0)),
        4096,
        0,
    );
    net.inject_at(SimTime::ZERO, blocker);
    // Adaptive message from (0,0) to (2,2): east is busy, north is free.
    net.inject_at(
        SimTime::from_us(2.0),
        MessageSpec {
            src: m.node_at(&Coord::xy(0, 0)),
            route: Route::Adaptive {
                dst: m.node_at(&Coord::xy(2, 2)),
            },
            length: 16,
            op: OpId(1),
            tag: 0,
            charge_startup: true,
        },
    );
    net.run_until_idle();
    let ds = net.drain_deliveries();
    let ad = ds.iter().find(|d| d.op == OpId(1)).unwrap();
    // Free path via north: it must not wait for the 4096-flit blocker
    // (which takes > 12us to clear).
    assert_eq!(ad.latency(), zero_load_latency(&cfg, 4, 16));
}

#[test]
fn deterministic_adaptive_routing_is_used_in_3d() {
    let mesh = Mesh::cube(4);
    let cfg = NetworkConfig::paper_default();
    let mut net = Network::new(mesh, cfg, Box::new(PlanarWestFirst));
    let m = net.mesh().clone();
    net.inject_at(
        SimTime::ZERO,
        MessageSpec {
            src: m.node_at(&Coord::xyz(3, 3, 3)),
            route: Route::Adaptive {
                dst: m.node_at(&Coord::xyz(0, 0, 0)),
            },
            length: 32,
            op: OpId(0),
            tag: 0,
            charge_startup: true,
        },
    );
    net.run_until_idle();
    let ds = net.drain_deliveries();
    assert_eq!(ds.len(), 1);
    assert_eq!(
        ds[0].latency(),
        zero_load_latency(&cfg, 9, 32),
        "minimal adaptive route"
    );
}

#[test]
fn counters_conserve_messages() {
    let mut net = net2d(8);
    for i in 0..20u64 {
        let src = NodeId((i * 3 % 64) as u32);
        let dst = NodeId(((i * 7 + 5) % 64) as u32);
        if src == dst {
            continue;
        }
        let spec = unicast_spec(&net, src, dst, 32, i);
        net.inject_at(SimTime::from_us(i as f64 * 0.5), spec);
    }
    net.run_until_idle();
    let c = net.counters();
    assert_eq!(c.injected, c.completed, "all messages complete");
    assert_eq!(c.deliveries, c.completed, "unicasts deliver exactly once");
    assert_eq!(c.flits_delivered, c.deliveries * 32);
    assert_eq!(net.in_flight(), 0);
    net.check_invariants();
}

#[test]
fn identical_runs_are_bit_identical() {
    let run = || -> Vec<Delivery> {
        let mut net = net2d(8);
        for i in 0..30u64 {
            let src = NodeId((i * 5 % 64) as u32);
            let dst = NodeId(((i * 11 + 3) % 64) as u32);
            if src == dst {
                continue;
            }
            let spec = unicast_spec(&net, src, dst, 64, i);
            net.inject_at(SimTime::from_us((i % 4) as f64), spec);
        }
        net.run_until_idle();
        net.drain_deliveries()
    };
    assert_eq!(run(), run());
}

#[test]
fn next_delivery_pulls_in_order() {
    let mut net = net2d(4);
    let m = net.mesh().clone();
    let near = unicast_spec(
        &net,
        m.node_at(&Coord::xy(0, 0)),
        m.node_at(&Coord::xy(1, 0)),
        8,
        0,
    );
    let far = unicast_spec(
        &net,
        m.node_at(&Coord::xy(0, 3)),
        m.node_at(&Coord::xy(3, 1)),
        8,
        1,
    );
    net.inject_at(SimTime::ZERO, far);
    net.inject_at(SimTime::ZERO, near);
    let first = net.next_delivery().unwrap();
    assert_eq!(first.op, OpId(0), "nearer delivery first");
    let second = net.next_delivery().unwrap();
    assert_eq!(second.op, OpId(1));
    assert!(net.next_delivery().is_none());
}

#[test]
fn run_until_respects_horizon() {
    let mut net = net2d(4);
    let m = net.mesh().clone();
    let spec = unicast_spec(
        &net,
        m.node_at(&Coord::xy(0, 0)),
        m.node_at(&Coord::xy(3, 3)),
        64,
        0,
    );
    net.inject_at(SimTime::ZERO, spec);
    net.run_until(SimTime::from_us(1.0));
    assert!(net.drain_deliveries().is_empty(), "Ts alone is 1.5us");
    net.run_until(SimTime::from_us(100.0));
    assert_eq!(net.drain_deliveries().len(), 1);
}

#[test]
#[should_panic(expected = "at least one flit")]
fn zero_length_rejected() {
    let mut net = net2d(4);
    let m = net.mesh().clone();
    let p = dor_path(&m, NodeId(0), NodeId(1));
    net.inject_at(
        SimTime::ZERO,
        MessageSpec {
            src: NodeId(0),
            route: Route::Fixed(CodedPath::unicast(&m, p)),
            length: 0,
            op: OpId(0),
            tag: 0,
            charge_startup: true,
        },
    );
}

#[test]
#[should_panic(expected = "adaptive route to self")]
fn self_route_rejected() {
    let mut net = net2d(4);
    net.inject_at(
        SimTime::ZERO,
        MessageSpec {
            src: NodeId(0),
            route: Route::Adaptive { dst: NodeId(0) },
            length: 8,
            op: OpId(0),
            tag: 0,
            charge_startup: true,
        },
    );
}

#[test]
fn startup_can_be_waived() {
    let mut net = net2d(4);
    let m = net.mesh().clone();
    let p = dor_path(&m, NodeId(0), NodeId(1));
    net.inject_at(
        SimTime::ZERO,
        MessageSpec {
            src: NodeId(0),
            route: Route::Fixed(CodedPath::unicast(&m, p)),
            length: 8,
            op: OpId(0),
            tag: 0,
            charge_startup: false,
        },
    );
    net.run_until_idle();
    let d = net.drain_deliveries().pop().unwrap();
    let cfg = *net.config();
    assert_eq!(d.latency(), cfg.hop_time() + cfg.body_time(8));
}

#[test]
fn facility_mode_zero_load_latency_unchanged() {
    // Without contention the two release disciplines are indistinguishable.
    let cfg = NetworkConfig::paper_default().with_release(ReleaseMode::AfterTailCrossing);
    let mut net = Network::new(Mesh::square(8), cfg, Box::new(DimensionOrdered));
    let m = net.mesh().clone();
    let spec = unicast_spec(
        &net,
        m.node_at(&Coord::xy(0, 0)),
        m.node_at(&Coord::xy(5, 3)),
        64,
        0,
    );
    net.inject_at(SimTime::ZERO, spec);
    net.run_until_idle();
    let d = net.drain_deliveries().pop().unwrap();
    assert_eq!(d.latency(), zero_load_latency(&cfg, 8, 64));
}

#[test]
fn facility_mode_releases_upstream_while_blocked() {
    // Blocker C occupies (3,0)->(3,1) for a long time. Message A (0,0)->(3,1)
    // crosses the row then blocks behind C. Message B wants A's first row
    // channel (0,0)->(1,0):
    //  - in PathHolding mode, B waits until A fully completes;
    //  - in AfterTailCrossing mode, A's row channels free as its tail drains,
    //    so B proceeds long before A completes.
    let run = |mode: ReleaseMode| -> SimDuration {
        let cfg = NetworkConfig::paper_default().with_release(mode);
        let mut net = Network::new(Mesh::square(4), cfg, Box::new(DimensionOrdered));
        let m = net.mesh().clone();
        let blocker = unicast_spec(
            &net,
            m.node_at(&Coord::xy(3, 0)),
            m.node_at(&Coord::xy(3, 1)),
            8192,
            0,
        );
        net.inject_at(SimTime::ZERO, blocker);
        let a = unicast_spec(
            &net,
            m.node_at(&Coord::xy(0, 0)),
            m.node_at(&Coord::xy(3, 1)),
            64,
            1,
        );
        net.inject_at(SimTime::from_us(0.1), a);
        let b = unicast_spec(
            &net,
            m.node_at(&Coord::xy(0, 0)),
            m.node_at(&Coord::xy(1, 0)),
            64,
            2,
        );
        net.inject_at(SimTime::from_us(1.0), b);
        net.run_until_idle();
        let ds = net.drain_deliveries();
        ds.iter().find(|d| d.op == OpId(2)).unwrap().latency()
    };
    let holding = run(ReleaseMode::PathHolding);
    let facility = run(ReleaseMode::AfterTailCrossing);
    assert!(
        facility < holding,
        "facility ({facility}) should beat path-holding ({holding}) for B"
    );
    // The blocker transmits 8192 flits = 24.6us; under path holding B is
    // stuck at least that long.
    assert!(holding > SimDuration::from_us(20.0));
    assert!(facility < SimDuration::from_us(10.0));
}

#[test]
fn facility_mode_conserves_messages() {
    let cfg = NetworkConfig::paper_default().with_release(ReleaseMode::AfterTailCrossing);
    let mut net = Network::new(Mesh::square(8), cfg, Box::new(DimensionOrdered));
    for i in 0..40u64 {
        let src = NodeId((i * 3 % 64) as u32);
        let dst = NodeId(((i * 7 + 5) % 64) as u32);
        if src == dst {
            continue;
        }
        let spec = unicast_spec(&net, src, dst, 32, i);
        net.inject_at(SimTime::from_us(i as f64 * 0.2), spec);
    }
    net.run_until_idle();
    let c = net.counters();
    assert_eq!(c.injected, c.completed);
    assert_eq!(net.in_flight(), 0);
    net.check_invariants();
}

mod trace_and_faults {
    use super::*;
    use crate::TraceKind;
    use wormcast_routing::WestFirst;

    #[test]
    fn trace_records_message_lifecycle() {
        let mut net = net2d(4);
        net.enable_trace(256);
        let m = net.mesh().clone();
        let spec = unicast_spec(
            &net,
            m.node_at(&Coord::xy(0, 0)),
            m.node_at(&Coord::xy(2, 1)),
            16,
            0,
        );
        let id = net.inject_at(SimTime::ZERO, spec);
        net.run_until_idle();
        let recs = net.trace().of_message(id);
        let kinds: Vec<TraceKind> = recs.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceKind::Inject,
                TraceKind::PortGrant,
                TraceKind::StartupDone,
                TraceKind::ChannelGrant,
                TraceKind::HeaderArrive,
                TraceKind::ChannelGrant,
                TraceKind::HeaderArrive,
                TraceKind::ChannelGrant,
                TraceKind::HeaderArrive,
                TraceKind::Deliver,
                TraceKind::Complete,
            ],
            "3-hop unicast lifecycle"
        );
        // Timestamps are monotone.
        assert!(recs.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn trace_disabled_by_default() {
        let mut net = net2d(4);
        let m = net.mesh().clone();
        let spec = unicast_spec(&net, NodeId(0), NodeId(1), 8, 0);
        let _ = m;
        net.inject_at(SimTime::ZERO, spec);
        net.run_until_idle();
        assert_eq!(net.trace().records().count(), 0);
    }

    #[test]
    fn trace_records_channel_wait_under_contention() {
        let mut net = net2d(4);
        net.enable_trace(512);
        let m = net.mesh().clone();
        let a = unicast_spec(
            &net,
            m.node_at(&Coord::xy(0, 0)),
            m.node_at(&Coord::xy(3, 0)),
            2048,
            0,
        );
        let b = unicast_spec(
            &net,
            m.node_at(&Coord::xy(0, 0)),
            m.node_at(&Coord::xy(3, 0)),
            16,
            1,
        );
        net.inject_at(SimTime::ZERO, a);
        let id_b = net.inject_at(SimTime::from_us(0.1), b);
        net.run_until_idle();
        let kinds: Vec<TraceKind> = net
            .trace()
            .of_message(id_b)
            .iter()
            .map(|r| r.kind)
            .collect();
        assert!(
            kinds.contains(&TraceKind::ChannelWait),
            "B queued: {kinds:?}"
        );
    }

    #[test]
    fn failed_channel_stalls_fixed_path() {
        let mut net = net2d(4);
        let m = net.mesh().clone();
        let a = m.node_at(&Coord::xy(0, 0));
        let b = m.node_at(&Coord::xy(1, 0));
        let ch = m.channel_between(a, b).unwrap();
        net.fail_channel(ch);
        let dst = m.node_at(&Coord::xy(3, 0));
        let spec = unicast_spec(&net, a, dst, 16, 0);
        net.inject_at(SimTime::ZERO, spec);
        net.run_until_idle();
        assert_eq!(net.in_flight(), 1, "message stalled on the dead link");
        assert!(net.drain_deliveries().is_empty());
    }

    #[test]
    fn adaptive_routes_around_failed_channel() {
        let mesh = Mesh::square(4);
        let cfg = NetworkConfig::paper_default();
        let mut net = Network::new(mesh, cfg, Box::new(WestFirst));
        let m = net.mesh().clone();
        // Fail the eastward channel out of (0,0); west-first can still go
        // north first for a north-east destination.
        let ch = m
            .channel_between(m.node_at(&Coord::xy(0, 0)), m.node_at(&Coord::xy(1, 0)))
            .unwrap();
        net.fail_channel(ch);
        net.inject_at(
            SimTime::ZERO,
            MessageSpec {
                src: m.node_at(&Coord::xy(0, 0)),
                route: Route::Adaptive {
                    dst: m.node_at(&Coord::xy(2, 2)),
                },
                length: 16,
                op: OpId(0),
                tag: 0,
                charge_startup: true,
            },
        );
        net.run_until_idle();
        let ds = net.drain_deliveries();
        assert_eq!(ds.len(), 1, "adaptive message survives the fault");
        assert_eq!(
            ds[0].latency(),
            zero_load_latency(&cfg, 4, 16),
            "still a minimal route"
        );
    }

    #[test]
    fn adaptive_with_no_live_candidate_stalls() {
        let mesh = Mesh::square(4);
        let mut net = Network::new(mesh, NetworkConfig::paper_default(), Box::new(WestFirst));
        let m = net.mesh().clone();
        // Destination due east along the top row: the only productive
        // west-first candidate from (0,3) is east; fail it.
        let ch = m
            .channel_between(m.node_at(&Coord::xy(0, 3)), m.node_at(&Coord::xy(1, 3)))
            .unwrap();
        net.fail_channel(ch);
        net.inject_at(
            SimTime::ZERO,
            MessageSpec {
                src: m.node_at(&Coord::xy(0, 3)),
                route: Route::Adaptive {
                    dst: m.node_at(&Coord::xy(3, 3)),
                },
                length: 16,
                op: OpId(0),
                tag: 0,
                charge_startup: true,
            },
        );
        net.run_until_idle();
        assert_eq!(net.in_flight(), 1, "no legal detour under west-first");
    }

    #[test]
    #[should_panic(expected = "occupied channel")]
    fn cannot_fail_busy_channel() {
        let mut net = net2d(4);
        let m = net.mesh().clone();
        let a = m.node_at(&Coord::xy(0, 0));
        let spec = unicast_spec(&net, a, m.node_at(&Coord::xy(3, 0)), 8192, 0);
        net.inject_at(SimTime::ZERO, spec);
        // Run past startup so the first channel is held.
        net.run_until(SimTime::from_us(2.0));
        let ch = m.channel_between(a, m.node_at(&Coord::xy(1, 0))).unwrap();
        net.fail_channel(ch);
    }

    #[test]
    fn broadcast_over_failed_link_stalls_that_branch_only() {
        // Fault-tolerance motivation (the paper cites fault signalling as a
        // broadcast use): a DB broadcast with one dead row link delivers to
        // everyone except the nodes behind the dead link.
        use wormcast_broadcast::Algorithm;
        let mesh = Mesh::cube(4);
        let cfg = NetworkConfig::paper_default().with_ports(6);
        let mut net = Network::new(mesh.clone(), cfg, Box::new(DimensionOrdered));
        // Fail one +X row link in plane 2.
        let a = mesh.node_at(&Coord::xyz(0, 1, 2));
        let b = mesh.node_at(&Coord::xyz(1, 1, 2));
        net.fail_channel(mesh.channel_between(a, b).unwrap());
        let src = mesh.node_at(&Coord::xyz(3, 3, 0));
        let schedule = Algorithm::Db.schedule(&mesh, src);
        let mut tracker = wormcast_workload_test_shim::Tracker::new(&mesh, &schedule, 16);
        for spec in tracker.start() {
            net.inject_at(SimTime::ZERO, spec);
        }
        while let Some(d) = net.next_delivery() {
            for spec in tracker.on_delivery(&d) {
                net.inject_at(d.delivered_at, spec);
            }
        }
        // Some (not all) nodes were reached; the dead branch stalled.
        assert!(tracker.received() > 0);
        assert!(tracker.received() < 63);
        assert!(net.in_flight() > 0, "the faulted branch is still stuck");
    }

    #[test]
    fn watchdog_reaps_unreachable_destination() {
        // The acceptance test for the delivery watchdog: a broadcast whose
        // destination sits behind a dead link is *detected* (recorded as
        // stalled with its lost destination counted) rather than wedging the
        // run forever.
        let mut net = Network::new(
            Mesh::square(4),
            NetworkConfig::paper_default().with_watchdog(SimDuration::from_us(50.0)),
            Box::new(DimensionOrdered),
        );
        let m = net.mesh().clone();
        let a = m.node_at(&Coord::xy(0, 0));
        let b = m.node_at(&Coord::xy(1, 0));
        net.fail_channel(m.channel_between(a, b).unwrap());
        let spec = unicast_spec(&net, a, m.node_at(&Coord::xy(3, 0)), 16, 0);
        net.inject_at(SimTime::ZERO, spec);
        net.run_until_idle(); // terminates: the watchdog reaps the wedge
        let c = net.counters();
        assert_eq!(c.stalled, 1);
        assert_eq!(c.undelivered, 1);
        assert_eq!(net.in_flight(), 0, "stalled leaves the in-flight count");
        assert!(net.drain_deliveries().is_empty());
        assert!(
            net.now() >= SimTime::from_us(50.0),
            "reaped at the timeout, not before"
        );
        net.force_check_invariants();
    }

    #[test]
    fn watchdog_releases_stalled_path_for_other_traffic() {
        // Graceful degradation: reaping a wedged message frees the channels
        // it held, so traffic queued behind it still completes.
        let cfg = NetworkConfig::paper_default().with_watchdog(SimDuration::from_us(20.0));
        let mut net = Network::new(Mesh::square(4), cfg, Box::new(DimensionOrdered));
        let m = net.mesh().clone();
        let dead = m
            .channel_between(m.node_at(&Coord::xy(2, 0)), m.node_at(&Coord::xy(3, 0)))
            .unwrap();
        net.fail_channel(dead);
        // A wedges on the dead link holding (0,0)→(1,0)→(2,0).
        let a = unicast_spec(
            &net,
            m.node_at(&Coord::xy(0, 0)),
            m.node_at(&Coord::xy(3, 0)),
            16,
            0,
        );
        net.inject_at(SimTime::ZERO, a);
        // B (injected after A holds its path) needs a channel A holds.
        let b = unicast_spec(
            &net,
            m.node_at(&Coord::xy(1, 0)),
            m.node_at(&Coord::xy(2, 0)),
            16,
            1,
        );
        net.inject_at(SimTime::from_us(1.0), b);
        net.run_until_idle();
        let ds = net.drain_deliveries();
        assert_eq!(ds.len(), 1, "B delivers once the watchdog reaps A");
        assert_eq!(ds[0].op, OpId(1));
        let c = net.counters();
        assert_eq!((c.stalled, c.undelivered, c.completed), (1, 1, 1));
        assert_eq!(net.in_flight(), 0);
        net.force_check_invariants();
    }

    #[test]
    fn watchdog_spares_legitimate_backpressure() {
        // Ordinary contention (one message queued behind another's long
        // body) must never be mistaken for a stall when the timeout
        // comfortably exceeds the drain time.
        let cfg = NetworkConfig::paper_default().with_watchdog(SimDuration::from_us(50.0));
        let mut net = Network::new(Mesh::square(4), cfg, Box::new(DimensionOrdered));
        let m = net.mesh().clone();
        let src = m.node_at(&Coord::xy(0, 0));
        let dst = m.node_at(&Coord::xy(2, 0));
        net.inject_at(SimTime::ZERO, unicast_spec(&net, src, dst, 1024, 0));
        net.inject_at(SimTime::ZERO, unicast_spec(&net, src, dst, 1024, 1));
        net.run_until_idle();
        assert_eq!(net.drain_deliveries().len(), 2);
        let c = net.counters();
        assert_eq!((c.stalled, c.completed), (0, 2));
    }

    #[test]
    fn transient_outage_delays_then_delivers() {
        use crate::fault::{FaultEvent, FaultKind, FaultPlan};
        let cfg = NetworkConfig::paper_default().with_watchdog(SimDuration::from_us(200.0));
        let mut net = Network::new(Mesh::square(4), cfg, Box::new(DimensionOrdered));
        let m = net.mesh().clone();
        let ch = m
            .channel_between(m.node_at(&Coord::xy(0, 0)), m.node_at(&Coord::xy(1, 0)))
            .unwrap();
        let mut plan = FaultPlan::new();
        plan.push(FaultEvent {
            at: SimTime::ZERO,
            kind: FaultKind::LinkDown(ch),
        });
        plan.push(FaultEvent {
            at: SimTime::from_us(40.0),
            kind: FaultKind::LinkUp(ch),
        });
        net.schedule_faults(&plan);
        let spec = unicast_spec(
            &net,
            m.node_at(&Coord::xy(0, 0)),
            m.node_at(&Coord::xy(1, 0)),
            16,
            0,
        );
        net.inject_at(SimTime::ZERO, spec);
        net.run_until_idle();
        let ds = net.drain_deliveries();
        assert_eq!(ds.len(), 1);
        assert!(
            ds[0].delivered_at >= SimTime::from_us(40.0),
            "delivery waited out the outage"
        );
        let c = net.counters();
        assert_eq!((c.link_failures, c.link_restores, c.stalled), (1, 1, 0));
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn mid_flight_link_down_lets_the_crossing_drain() {
        // A fault on an occupied channel must not lose the flits already in
        // the pipeline: the crossing drains, then the channel stays down.
        use crate::fault::{FaultEvent, FaultKind, FaultPlan};
        let mut net = net2d(4);
        let m = net.mesh().clone();
        let ch = m
            .channel_between(m.node_at(&Coord::xy(0, 0)), m.node_at(&Coord::xy(1, 0)))
            .unwrap();
        let mut plan = FaultPlan::new();
        plan.push(FaultEvent {
            at: SimTime::from_us(2.0), // mid-body: held until ~26 µs
            kind: FaultKind::LinkDown(ch),
        });
        net.schedule_faults(&plan);
        let spec = unicast_spec(
            &net,
            m.node_at(&Coord::xy(0, 0)),
            m.node_at(&Coord::xy(1, 0)),
            8192,
            0,
        );
        net.inject_at(SimTime::ZERO, spec);
        net.run_until_idle();
        assert_eq!(net.drain_deliveries().len(), 1, "in-pipeline flits kept");
        assert!(net.is_failed(ch), "the channel stays down afterwards");
        assert_eq!(net.counters().link_failures, 1);
    }

    #[test]
    fn scheduled_fault_reroute_is_counted() {
        use crate::fault::{FaultEvent, FaultKind, FaultPlan};
        let mesh = Mesh::square(4);
        let mut net = Network::new(mesh, NetworkConfig::paper_default(), Box::new(WestFirst));
        let m = net.mesh().clone();
        let ch = m
            .channel_between(m.node_at(&Coord::xy(0, 0)), m.node_at(&Coord::xy(1, 0)))
            .unwrap();
        let mut plan = FaultPlan::new();
        plan.push(FaultEvent {
            at: SimTime::ZERO,
            kind: FaultKind::LinkDown(ch),
        });
        net.schedule_faults(&plan);
        net.inject_at(
            SimTime::ZERO,
            MessageSpec {
                src: m.node_at(&Coord::xy(0, 0)),
                route: Route::Adaptive {
                    dst: m.node_at(&Coord::xy(2, 2)),
                },
                length: 16,
                op: OpId(0),
                tag: 0,
                charge_startup: true,
            },
        );
        net.run_until_idle();
        assert_eq!(net.drain_deliveries().len(), 1);
        let c = net.counters();
        assert_eq!(c.link_failures, 1);
        assert!(c.reroutes >= 1, "the dodge around the dead link is counted");
        assert_eq!(c.stalled, 0);
    }

    /// Minimal re-implementation of the workload executor for this test
    /// (the network crate cannot depend on wormcast-workload).
    mod wormcast_workload_test_shim {
        use crate::{Delivery, MessageSpec, OpId, Route};
        use std::collections::HashMap;
        use wormcast_broadcast::{BroadcastSchedule, RoutePlan};
        use wormcast_topology::{Mesh, NodeId};

        pub struct Tracker {
            pending: HashMap<NodeId, Vec<MessageSpec>>,
            source: NodeId,
            received: usize,
        }

        impl Tracker {
            pub fn new(mesh: &Mesh, s: &BroadcastSchedule, length: u64) -> Self {
                let _ = mesh;
                let mut pending: HashMap<NodeId, Vec<MessageSpec>> = HashMap::new();
                for m in &s.messages {
                    let (src, route) = match &m.plan {
                        RoutePlan::Coded(cp) => (cp.src(), Route::Fixed(cp.clone())),
                        RoutePlan::Adaptive { src, dst } => (*src, Route::Adaptive { dst: *dst }),
                    };
                    pending.entry(src).or_default().push(MessageSpec {
                        src,
                        route,
                        length,
                        op: OpId(0),
                        tag: m.step,
                        charge_startup: m.charge_startup,
                    });
                }
                Tracker {
                    pending,
                    source: s.source,
                    received: 0,
                }
            }

            pub fn start(&mut self) -> Vec<MessageSpec> {
                self.pending.remove(&self.source).unwrap_or_default()
            }

            pub fn on_delivery(&mut self, d: &Delivery) -> Vec<MessageSpec> {
                self.received += 1;
                self.pending.remove(&d.node).unwrap_or_default()
            }

            pub fn received(&self) -> usize {
                self.received
            }
        }
    }
}

mod metrics_sinks {
    use super::*;
    use crate::metrics::MetricsSink;
    use crate::MessageId;
    use wormcast_topology::ChannelId;

    /// Networks (with their sinks and routing function) move into harness
    /// worker threads; this must keep compiling.
    #[test]
    fn network_is_send() {
        fn assert_send<S: Send>() {}
        assert_send::<Network<Mesh>>();
    }

    /// A sink counting raw events, cross-checked against the built-ins.
    #[derive(Default)]
    struct Probe {
        injects: u64,
        hops: u64,
        delivers: u64,
        completes: u64,
        grants: u64,
        releases: u64,
    }

    impl MetricsSink for Probe {
        fn on_inject(&mut self, _t: SimTime, _m: MessageId, _n: NodeId) {
            self.injects += 1;
        }
        fn on_header_hop(&mut self, _t: SimTime, _m: MessageId, _n: NodeId, _c: ChannelId) {
            self.hops += 1;
        }
        fn on_channel_grant(&mut self, _t: SimTime, _m: MessageId, _c: ChannelId) {
            self.grants += 1;
        }
        fn on_channel_release(&mut self, _t: SimTime, _c: ChannelId) {
            self.releases += 1;
        }
        fn on_deliver(&mut self, _t: SimTime, _m: MessageId, _n: NodeId, _f: u64) {
            self.delivers += 1;
        }
        fn on_complete(&mut self, _t: SimTime, _m: MessageId, _n: NodeId) {
            self.completes += 1;
        }
    }

    #[test]
    fn attached_sink_sees_the_event_stream() {
        // Shared-state probe: the sink is owned by the network, so observe
        // through an Arc<Mutex<..>> mirror.
        use std::sync::{Arc, Mutex};

        #[derive(Default)]
        struct Shared(Arc<Mutex<Probe>>);
        impl MetricsSink for Shared {
            fn on_inject(&mut self, t: SimTime, m: MessageId, n: NodeId) {
                self.0.lock().unwrap().on_inject(t, m, n);
            }
            fn on_header_hop(&mut self, t: SimTime, m: MessageId, n: NodeId, c: ChannelId) {
                self.0.lock().unwrap().on_header_hop(t, m, n, c);
            }
            fn on_channel_grant(&mut self, t: SimTime, m: MessageId, c: ChannelId) {
                self.0.lock().unwrap().on_channel_grant(t, m, c);
            }
            fn on_channel_release(&mut self, t: SimTime, c: ChannelId) {
                self.0.lock().unwrap().on_channel_release(t, c);
            }
            fn on_deliver(&mut self, t: SimTime, m: MessageId, n: NodeId, f: u64) {
                self.0.lock().unwrap().on_deliver(t, m, n, f);
            }
            fn on_complete(&mut self, t: SimTime, m: MessageId, n: NodeId) {
                self.0.lock().unwrap().on_complete(t, m, n);
            }
        }

        let probe = Arc::new(Mutex::new(Probe::default()));
        let mut net = net2d(4);
        net.add_sink(Box::new(Shared(probe.clone())));

        let m = net.mesh().clone();
        for (i, dst) in [Coord::xy(3, 0), Coord::xy(0, 3), Coord::xy(2, 2)]
            .iter()
            .enumerate()
        {
            let spec = unicast_spec(
                &net,
                m.node_at(&Coord::xy(1, 1)),
                m.node_at(dst),
                16,
                i as u64,
            );
            net.inject_at(SimTime::from_us(i as f64), spec);
        }
        net.run_until_idle();

        let p = probe.lock().unwrap();
        let c = net.counters();
        assert_eq!(p.injects, c.injected);
        assert_eq!(p.delivers, c.deliveries);
        assert_eq!(p.completes, c.completed);
        assert_eq!(p.grants, p.hops, "every grant leads to one crossing");
        assert_eq!(p.grants, p.releases, "every grant is eventually released");
        assert!(p.hops > 0);
    }

    #[test]
    fn utilization_matches_pre_refactor_accounting() {
        // One 2-hop unicast under path-holding: each crossed channel is held
        // from its grant until completion; utilization must reflect that.
        let mut net = net2d(4);
        let m = net.mesh().clone();
        let src = m.node_at(&Coord::xy(0, 0));
        let dst = m.node_at(&Coord::xy(2, 0));
        let spec = unicast_spec(&net, src, dst, 100, 0);
        net.inject_at(SimTime::ZERO, spec);
        net.run_until_idle();
        let u = net.channel_utilization();
        let busy: Vec<f64> = u.iter().copied().filter(|&x| x > 0.0).collect();
        assert_eq!(busy.len(), 2, "two channels saw traffic: {u:?}");
        // The first channel is granted at Ts and held until the tail clears
        // the destination; the run ends at completion time, so occupancy is
        // (total - Ts) / total.
        let total = net.now().as_us();
        let expect = (total - net.config().startup.as_us()) / total;
        assert!((busy[0] - expect).abs() < 1e-9, "{} vs {expect}", busy[0]);
    }
}
