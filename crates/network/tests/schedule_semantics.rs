//! Schedule-layer semantics, pinned against the `network::classic` oracle.
//!
//! Two families of guarantees:
//!
//! * **Same-cycle restore (watchdog regression):** a `LinkUp` landing on the
//!   exact cycle a `StallCheck` fires must count as forward progress — the
//!   waiter gets a fresh timeout instead of a spurious reap, and the arena
//!   engine's physics stay bit-equal to the (watchdog-free) oracle.
//! * **Speed transitions and phase marks:** scheduled bandwidth changes and
//!   phase boundaries produce identical traces, deliveries, and counters in
//!   the arena engine, the classic oracle, and the sharded engine.

use wormcast_network::classic;
use wormcast_network::{
    FaultEvent, FaultKind, FaultPlan, MessageSpec, Network, NetworkConfig, OpId, ReleaseMode,
    Route, ShardedNetwork, TraceRecord,
};
use wormcast_routing::{dor_path, CodedPath, DimensionOrdered};
use wormcast_sim::{SimTime, SpeedTransition};
use wormcast_topology::{Coord, Mesh, Topology};

fn unicast(mesh: &Mesh, src: (u16, u16), dst: (u16, u16), length: u64, op: u64) -> MessageSpec {
    let s = mesh.node_at(&Coord::xy(src.0, src.1));
    let d = mesh.node_at(&Coord::xy(dst.0, dst.1));
    MessageSpec {
        src: s,
        route: Route::Fixed(CodedPath::unicast(mesh, dor_path(mesh, s, d))),
        length,
        op: OpId(op),
        tag: 0,
        charge_startup: false,
    }
}

/// A restore on the same cycle as the watchdog probe, while the channel is
/// still draining another message, must re-arm the probe — not reap the
/// waiter. Before the progress-epoch fix the probe compared hop counts,
/// saw "no progress", and stalled a message the restored link was about to
/// serve.
#[test]
fn same_cycle_restore_does_not_trip_watchdog() {
    let mesh = Mesh::square(2);
    // Facility queueing so the blocker's channel drains on its own clock,
    // independent of downstream progress; 2 ports so both messages start.
    let cfg = NetworkConfig::builder()
        .startup_us(0.0)
        .flit_us(0.003)
        .routing_delay_us(0.003)
        .ports(2)
        .release(ReleaseMode::AfterTailCrossing)
        .watchdog_us(0.3)
        .build()
        .expect("valid config");

    // Blocker: 200 flits across the channel (0,0)->(1,0). Granted at t=0,
    // header at 0.006, tail drains until 0.606 — the channel stays busy.
    let blocker = unicast(&mesh, (0, 0), (1, 0), 200, 0);
    let Route::Fixed(cp) = &blocker.route else {
        unreachable!()
    };
    let contested = cp.path.hops[0];

    // Outage: down at 0.1 (mid-drain), restored at exactly 0.5 — the same
    // cycle the victim's watchdog probe fires (victim waits from 0.2, and
    // 0.2 + 0.3 = 0.5). The channel is still draining until 0.606.
    let mut plan = FaultPlan::new();
    plan.push(FaultEvent {
        at: SimTime::from_us(0.1),
        kind: FaultKind::LinkDown(contested),
    });
    plan.push(FaultEvent {
        at: SimTime::from_us(0.5),
        kind: FaultKind::LinkUp(contested),
    });

    let victim = unicast(&mesh, (0, 0), (1, 0), 10, 1);

    let mut arena = Network::new(mesh.clone(), cfg, Box::new(DimensionOrdered));
    arena.enable_trace(4096);
    arena.schedule_faults(&plan);
    arena.inject_at(SimTime::ZERO, blocker.clone());
    arena.inject_at(SimTime::from_us(0.2), victim.clone());
    arena.run_until_idle();

    let c = arena.counters();
    assert_eq!(c.stalled, 0, "same-cycle restore must not reap the waiter");
    assert_eq!(c.completed, 2);
    assert_eq!(c.deliveries, 2);
    assert_eq!(c.link_failures, 1);
    assert_eq!(c.link_restores, 1);

    // The oracle has no watchdog at all, so bit-equality here proves the
    // watchdog made no spurious decision anywhere on this schedule.
    let mut oracle = classic::Network::new(mesh, cfg, Box::new(DimensionOrdered));
    oracle.enable_trace(4096);
    oracle.schedule_faults(&plan);
    oracle.inject_at(SimTime::ZERO, blocker);
    oracle.inject_at(SimTime::from_us(0.2), victim);
    oracle.run_until_idle();

    assert_eq!(arena.drain_deliveries(), oracle.drain_deliveries());
    assert_eq!(arena.counters(), oracle.counters());
    let at: Vec<TraceRecord> = arena.trace().records().copied().collect();
    let ot: Vec<TraceRecord> = oracle.trace().records().copied().collect();
    assert_eq!(at, ot, "trace divergence between arena and oracle");
    // Final clocks are NOT compared: the arena's re-armed probe fires once
    // more (harmlessly, after completion) at 0.8 µs; the oracle has no
    // watchdog events at all.
}

/// A restore one cycle *too late* (after the probe) still reaps: the fix
/// must not make the watchdog ignore genuine stalls.
#[test]
fn late_restore_still_reaps_the_waiter() {
    let mesh = Mesh::square(2);
    let cfg = NetworkConfig::builder()
        .startup_us(0.0)
        .flit_us(0.003)
        .routing_delay_us(0.003)
        .ports(2)
        .release(ReleaseMode::AfterTailCrossing)
        .watchdog_us(0.3)
        .build()
        .expect("valid config");

    let blocker = unicast(&mesh, (0, 0), (1, 0), 200, 0);
    let Route::Fixed(cp) = &blocker.route else {
        unreachable!()
    };
    let contested = cp.path.hops[0];

    // Down at 0.1; restored at 0.5001 — just after the probe at 0.5.
    let mut plan = FaultPlan::new();
    plan.push(FaultEvent {
        at: SimTime::from_us(0.1),
        kind: FaultKind::LinkDown(contested),
    });
    plan.push(FaultEvent {
        at: SimTime::from_us(0.5001),
        kind: FaultKind::LinkUp(contested),
    });

    let mut arena = Network::new(mesh, cfg, Box::new(DimensionOrdered));
    arena.schedule_faults(&plan);
    arena.inject_at(SimTime::ZERO, blocker);
    arena.inject_at(
        SimTime::from_us(0.2),
        unicast(&Mesh::square(2), (0, 0), (1, 0), 10, 1),
    );
    arena.run_until_idle();

    let c = arena.counters();
    assert_eq!(c.stalled, 1, "a probe with no progress must still reap");
    assert_eq!(c.completed, 1);
}

/// Scheduled bandwidth transitions and phase marks produce bit-equal
/// physics in all three engines.
#[test]
fn speed_transitions_and_phase_marks_match_across_engines() {
    let mesh = Mesh::square(4);
    let cfg = NetworkConfig::paper_default();
    let specs: Vec<MessageSpec> = vec![
        unicast(&mesh, (0, 0), (3, 2), 64, 0),
        unicast(&mesh, (1, 0), (3, 3), 32, 1),
        unicast(&mesh, (0, 3), (2, 0), 48, 2),
        unicast(&mesh, (3, 1), (0, 2), 16, 3),
    ];
    // Slow every other physical channel 4x partway through, restore later.
    let mut transitions = Vec::new();
    for ch in mesh.channels().step_by(2) {
        transitions.push(SpeedTransition {
            at: SimTime::from_us(1.6),
            channel: ch.0,
            factor: 4,
        });
        transitions.push(SpeedTransition {
            at: SimTime::from_us(2.4),
            channel: ch.0,
            factor: 1,
        });
    }
    let marks = [(SimTime::from_us(1.6), 1u32), (SimTime::from_us(2.4), 2u32)];

    let mut arena = Network::new(mesh.clone(), cfg, Box::new(DimensionOrdered));
    arena.enable_trace(65536);
    arena.schedule_speed_transitions(&transitions);
    arena.schedule_phase_marks(&marks);
    for s in &specs {
        arena.inject_at(SimTime::ZERO, s.clone());
    }
    arena.run_until_idle();

    let mut oracle = classic::Network::new(mesh.clone(), cfg, Box::new(DimensionOrdered));
    oracle.enable_trace(65536);
    oracle.schedule_speed_transitions(&transitions);
    oracle.schedule_phase_marks(&marks);
    for s in &specs {
        oracle.inject_at(SimTime::ZERO, s.clone());
    }
    oracle.run_until_idle();

    assert_eq!(arena.drain_deliveries(), oracle.drain_deliveries());
    assert_eq!(arena.counters(), oracle.counters());
    let mut at: Vec<TraceRecord> = arena.trace().records().copied().collect();
    let ot: Vec<TraceRecord> = oracle.trace().records().copied().collect();
    assert_eq!(at, ot, "trace divergence between arena and oracle");
    assert_eq!(arena.now(), oracle.now());

    // Sharded engine: same physics under a 2-way slab partition (trace
    // compared in the sharded engine's canonical sorted order).
    let mut sharded = ShardedNetwork::new(mesh, cfg, 2, || Box::new(DimensionOrdered))
        .expect("2 shards fit a 4-wide axis");
    sharded.enable_trace(65536);
    sharded.schedule_speed_transitions(&transitions);
    sharded.schedule_phase_marks(&marks);
    for s in &specs {
        sharded.inject_at(SimTime::ZERO, s.clone());
    }
    sharded.run_until_idle();
    assert_eq!(arena.counters(), sharded.counters());
    at.sort_unstable();
    assert_eq!(at, sharded.trace_records(), "sharded trace divergence");
}

/// The slowdown is observable: the same workload takes strictly longer when
/// its path is degraded, by exactly the extra crossing time.
#[test]
fn speed_factor_lengthens_the_crossing_exactly() {
    let mesh = Mesh::square(4);
    let cfg = NetworkConfig::paper_default();
    let spec = unicast(&mesh, (0, 0), (3, 2), 64, 0);

    let run = |factor: u32| {
        let mut net = Network::new(mesh.clone(), cfg, Box::new(DimensionOrdered));
        if factor > 1 {
            let transitions: Vec<SpeedTransition> = mesh
                .channels()
                .map(|ch| SpeedTransition {
                    at: SimTime::ZERO,
                    channel: ch.0,
                    factor,
                })
                .collect();
            net.schedule_speed_transitions(&transitions);
        }
        net.inject_at(SimTime::ZERO, spec.clone());
        net.run_until_idle();
        net.drain_deliveries()
            .pop()
            .expect("one delivery")
            .latency()
    };

    let base = run(1);
    let slow = run(3);
    // 5 hops at hop_time extra per unit factor (startup and body unchanged).
    let extra = slow.as_us() - base.as_us();
    let expected = 5.0 * cfg.hop_time().as_us() * 2.0;
    assert!(
        (extra - expected).abs() < 1e-9,
        "expected {expected} µs of extra crossing time, got {extra}"
    );
}
