//! Property: fault-plan sampling is byte-identical under any `--jobs` split.
//!
//! The faults experiment shards replications across worker threads; its
//! determinism contract (see `wormcast-workload::faulty`) is that the plan
//! for replication `rep` depends only on `(mesh, spec, seed, rep)` — never
//! on which worker samples it or in what order. This test replays the real
//! derivation (`SimRng::for_replication(seed, rep).substream("faults")`)
//! under sequential and arbitrarily-sharded orders and requires the exact
//! same event list, rendered to bytes, for every replication.

use proptest::prelude::ProptestConfig;
use wormcast_network::{FaultPlan, FaultSpec};
use wormcast_sim::SimRng;
use wormcast_topology::Mesh;

/// The plan a worker derives for one replication, rendered to bytes.
fn plan_bytes(mesh: &Mesh, spec: &FaultSpec, seed: u64, rep: u64) -> String {
    let mut rng = SimRng::for_replication(seed, rep).substream("faults");
    let plan = FaultPlan::sample(mesh, spec, &mut rng);
    format!("{:?}|dead:{:?}", plan.events(), plan.dead_at_start())
}

proptest::proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fault_plans_are_identical_for_any_jobs_split(
        seed in 0u64..10_000,
        side in 2u16..=5,
        link_pm in 0u32..60,      // per-mille rates keep plans non-trivial
        node_pm in 0u32..20,
        transient_pm in 0u32..60,
        jobs in 1usize..=6,
        reps in 1u64..=12,
    ) {
        let mesh = Mesh::cube(side);
        let spec = FaultSpec {
            link_fail_rate: f64::from(link_pm) / 1000.0,
            node_fail_rate: f64::from(node_pm) / 1000.0,
            transient_rate: f64::from(transient_pm) / 1000.0,
            transient_window_us: 40.0,
            outage_us: 10.0,
        };

        // Reference: one worker sampling every replication in order.
        let sequential: Vec<String> = (0..reps)
            .map(|rep| plan_bytes(&mesh, &spec, seed, rep))
            .collect();

        // Sharded: `jobs` workers, round-robin assignment, each draining its
        // own shard to completion (so the global sampling order differs).
        let mut sharded: Vec<Option<String>> = vec![None; reps as usize];
        for worker in 0..jobs {
            for rep in (worker as u64..reps).step_by(jobs) {
                sharded[rep as usize] = Some(plan_bytes(&mesh, &spec, seed, rep));
            }
        }

        for (rep, (a, b)) in sequential.iter().zip(&sharded).enumerate() {
            let b = b.as_ref().expect("every replication assigned");
            proptest::prop_assert_eq!(a, b, "rep {} diverged under a {}-way split", rep, jobs);
        }

        // Resampling the same replication is also bit-stable (a worker
        // retry must not see a different fault world).
        let again = plan_bytes(&mesh, &spec, seed, 0);
        proptest::prop_assert_eq!(&sequential[0], &again);
    }
}
