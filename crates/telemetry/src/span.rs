//! Phase spans: a deterministic span tree whose *structure* is a pure
//! function of the code path, with wall-clock durations carried separately
//! in non-deterministic fields.
//!
//! A [`Profiler`] records spans as drivers move through their phases
//! (`setup` → `run` → `merge` → `emit`). The tree — names, depths,
//! sequence numbers — is byte-identical across `--jobs` and `--shards`
//! because spans are only opened from the driver's main thread along a
//! deterministic path; the measured `Instant` durations are returned
//! side-by-side (indexed by sequence number) so reports can render them on
//! `nd_`-marked lines excluded from determinism comparisons.

use std::time::Instant;

/// One node of the span tree: structure only, no timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Pre-order sequence number (also the index into the wall-clock
    /// vector).
    pub seq: u64,
    /// Nesting depth (root = 0).
    pub depth: u32,
    /// Static span name.
    pub name: &'static str,
}

/// Records a span tree with out-of-band wall-clock durations.
#[derive(Debug)]
pub struct Profiler {
    spans: Vec<SpanNode>,
    wall_ns: Vec<u64>,
    /// Stack of open spans: (index into `spans`, start time).
    open: Vec<(usize, Instant)>,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Profiler {
            spans: Vec::new(),
            wall_ns: Vec::new(),
            open: Vec::new(),
        }
    }

    /// Open a span nested under the currently open one.
    pub fn open(&mut self, name: &'static str) {
        let idx = self.spans.len();
        self.spans.push(SpanNode {
            seq: idx as u64,
            depth: self.open.len() as u32,
            name,
        });
        self.wall_ns.push(0);
        self.open.push((idx, Instant::now()));
    }

    /// Close the innermost open span, stamping its wall clock.
    pub fn close(&mut self) {
        if let Some((idx, t0)) = self.open.pop() {
            self.wall_ns[idx] = t0.elapsed().as_nanos() as u64;
        }
    }

    /// Move to the next phase at depth 1: closes the current depth-1 span
    /// (if one is open) and opens `name` under the root. Opens a root named
    /// `"driver"` first if none exists yet.
    pub fn phase(&mut self, name: &'static str) {
        if self.open.is_empty() {
            self.open("driver");
        }
        while self.open.len() > 1 {
            self.close();
        }
        self.open(name);
    }

    /// Close every open span and return `(structure, nd wall-clock ns)`,
    /// the latter indexed by [`SpanNode::seq`].
    pub fn finish(mut self) -> (Vec<SpanNode>, Vec<u64>) {
        while !self.open.is_empty() {
            self.close();
        }
        (self.spans, self.wall_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_is_pure_function_of_call_sequence() {
        let run = || {
            let mut p = Profiler::new();
            p.open("fig1");
            p.phase("setup");
            p.phase("run");
            p.phase("merge");
            p.phase("emit");
            p.finish()
        };
        let (a, wall_a) = run();
        let (b, wall_b) = run();
        assert_eq!(a, b, "span structure must be deterministic");
        assert_eq!(wall_a.len(), a.len());
        assert_eq!(wall_b.len(), b.len());
        let names: Vec<&str> = a.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["fig1", "setup", "run", "merge", "emit"]);
        let depths: Vec<u32> = a.iter().map(|s| s.depth).collect();
        assert_eq!(depths, vec![0, 1, 1, 1, 1]);
    }

    #[test]
    fn phase_without_root_opens_driver_root() {
        let mut p = Profiler::new();
        p.phase("setup");
        let (spans, wall) = p.finish();
        assert_eq!(spans[0].name, "driver");
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].name, "setup");
        assert_eq!(spans[1].depth, 1);
        assert_eq!(wall.len(), 2);
    }

    #[test]
    fn nested_opens_track_depth() {
        let mut p = Profiler::new();
        p.open("root");
        p.open("outer");
        p.open("inner");
        p.close();
        p.open("inner2");
        let (spans, _) = p.finish();
        let got: Vec<(&str, u32)> = spans.iter().map(|s| (s.name, s.depth)).collect();
        assert_eq!(
            got,
            vec![("root", 0), ("outer", 1), ("inner", 2), ("inner2", 2)]
        );
    }

    #[test]
    fn wall_clock_is_monotone_recorded() {
        let mut p = Profiler::new();
        p.open("root");
        std::thread::sleep(std::time::Duration::from_millis(1));
        let (_, wall) = p.finish();
        assert!(wall[0] >= 1_000_000, "root span saw the sleep: {wall:?}");
    }
}
