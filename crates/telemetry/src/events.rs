//! Streaming NDJSON event export.
//!
//! Every `MetricsSink` callback can be captured as one [`Event`] — a flat
//! record of small integers — and serialized lazily: the [`EventLog`] stores
//! events in memory as packed structs and only renders JSON when written
//! out, but it enforces its byte budget *eagerly* by computing the exact
//! serialized line length arithmetically (digit counting), so a bounded log
//! never buffers more than it will emit. Once the budget is exhausted,
//! further events are counted in [`EventLog::dropped`] rather than stored.
//!
//! The line schema is fixed and order-stable:
//!
//! ```json
//! {"t_ps":1500000,"ev":"deliver","rep":3,"msg":0,"node":12,"flits":100}
//! ```
//!
//! Keys appear in the order `t_ps, ev, rep, msg, node, ch, q, flits, name`;
//! absent fields are omitted entirely (never `null`). All values are
//! unsigned integers except `ev`, which is one of the [`EventKind`] names,
//! and `name`, a static label used by profiling events. Because
//! the vendored serde facade has no deserializer, this module also ships a
//! minimal flat-object parser ([`parse_line`]) and a whole-file validator
//! ([`validate_ndjson`]) used by the schema tests and CI.

use crate::TELEMETRY_EVENT_BUDGET_DEFAULT;
use std::collections::HashMap;
use std::fmt::Write as _;
use wormcast_network::trace::{Trace, TraceKind, TraceRecord};

/// What a line records; mirrors the `MetricsSink` callbacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Injection requested.
    Inject,
    /// Injection port granted.
    PortGrant,
    /// Start-up latency elapsed.
    StartupDone,
    /// Header finished crossing a channel.
    Header,
    /// Header joined a busy channel's FIFO.
    ChannelWait,
    /// Channel granted.
    ChannelGrant,
    /// Channel released.
    ChannelRelease,
    /// Payload copy absorbed.
    Deliver,
    /// Message complete.
    Complete,
    /// A link went down (fault injection).
    LinkDown,
    /// A link came back up (end of a transient outage).
    LinkUp,
    /// An adaptive header steered around a faulted channel.
    Reroute,
    /// The delivery watchdog retired a stalled message.
    Stalled,
    /// The simcheck invariant checker recorded a violation (the line only
    /// locates it; the violation text lives in the simcheck report).
    InvariantViolation,
    /// A profiling phase span opened (`name` carries the span name, `q`
    /// its pre-order sequence number).
    SpanOpen,
    /// A profiling phase span closed.
    SpanClose,
    /// A deterministic metric's final value (`name` carries the metric id,
    /// `q` the value).
    MetricSnapshot,
    /// A serve request was answered from the completed-result cache (`q`
    /// carries the request's config hash).
    CacheHit,
    /// A serve request missed the cache and started a fresh engine run
    /// (`q` carries the request's config hash).
    CacheMiss,
    /// A serve request joined an identical in-flight run instead of
    /// starting its own (`q` carries the request's config hash).
    Coalesced,
    /// A scenario-schedule phase boundary was crossed (`q` carries the
    /// phase number).
    SchedulePhase,
}

impl EventKind {
    /// Stable wire name for the `ev` field.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Inject => "inject",
            EventKind::PortGrant => "port_grant",
            EventKind::StartupDone => "startup_done",
            EventKind::Header => "header",
            EventKind::ChannelWait => "channel_wait",
            EventKind::ChannelGrant => "channel_grant",
            EventKind::ChannelRelease => "channel_release",
            EventKind::Deliver => "deliver",
            EventKind::Complete => "complete",
            EventKind::LinkDown => "link_down",
            EventKind::LinkUp => "link_up",
            EventKind::Reroute => "reroute",
            EventKind::Stalled => "stalled",
            EventKind::InvariantViolation => "invariant_violation",
            EventKind::SpanOpen => "span_open",
            EventKind::SpanClose => "span_close",
            EventKind::MetricSnapshot => "metric_snapshot",
            EventKind::CacheHit => "cache_hit",
            EventKind::CacheMiss => "cache_miss",
            EventKind::Coalesced => "coalesced",
            EventKind::SchedulePhase => "schedule_phase",
        }
    }
}

/// One observable engine event, packed for lazy serialization.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Simulation time in picoseconds.
    pub t_ps: u64,
    /// What happened.
    pub kind: EventKind,
    /// Replication index the event came from.
    pub rep: u64,
    /// Message involved, if any.
    pub msg: Option<u64>,
    /// Node involved, if any.
    pub node: Option<u32>,
    /// Channel involved, if any.
    pub ch: Option<u32>,
    /// FIFO depth (for `channel_wait`) or undelivered destination count
    /// (for `stalled`), if any.
    pub q: Option<u64>,
    /// Payload flits (for `deliver`), if any.
    pub flits: Option<u64>,
    /// Static label (span name or metric id) for profiling events, if any.
    pub name: Option<&'static str>,
}

impl Event {
    /// A minimal event with all optional fields absent.
    pub fn new(t_ps: u64, kind: EventKind, rep: u64) -> Self {
        Event {
            t_ps,
            kind,
            rep,
            msg: None,
            node: None,
            ch: None,
            q: None,
            flits: None,
            name: None,
        }
    }

    /// Render the NDJSON line, **without** the trailing newline.
    pub fn line(&self) -> String {
        let mut s = String::with_capacity(self.line_len());
        let _ = write!(
            s,
            "{{\"t_ps\":{},\"ev\":\"{}\",\"rep\":{}",
            self.t_ps,
            self.kind.name(),
            self.rep
        );
        if let Some(m) = self.msg {
            let _ = write!(s, ",\"msg\":{m}");
        }
        if let Some(n) = self.node {
            let _ = write!(s, ",\"node\":{n}");
        }
        if let Some(c) = self.ch {
            let _ = write!(s, ",\"ch\":{c}");
        }
        if let Some(q) = self.q {
            let _ = write!(s, ",\"q\":{q}");
        }
        if let Some(f) = self.flits {
            let _ = write!(s, ",\"flits\":{f}");
        }
        if let Some(name) = self.name {
            let _ = write!(s, ",\"name\":\"{name}\"");
        }
        s.push('}');
        s
    }

    /// Exact byte length of [`Event::line`], computed without allocating.
    pub fn line_len(&self) -> usize {
        let mut n = 8 + digits(self.t_ps); // {"t_ps":N
        n += 8 + self.kind.name().len(); // ,"ev":"K"
        n += 7 + digits(self.rep); // ,"rep":N
        if let Some(m) = self.msg {
            n += 7 + digits(m); // ,"msg":N
        }
        if let Some(node) = self.node {
            n += 8 + digits(node as u64); // ,"node":N
        }
        if let Some(c) = self.ch {
            n += 6 + digits(c as u64); // ,"ch":N
        }
        if let Some(q) = self.q {
            n += 5 + digits(q); // ,"q":N
        }
        if let Some(f) = self.flits {
            n += 9 + digits(f); // ,"flits":N
        }
        if let Some(name) = self.name {
            n += 10 + name.len(); // ,"name":"S"
        }
        n + 1 // }
    }
}

/// Decimal digit count of `v`.
#[inline]
fn digits(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (v.ilog10() + 1) as usize
    }
}

/// A byte-budgeted, lazily-serialized event buffer.
#[derive(Debug, Clone)]
pub struct EventLog {
    events: Vec<Event>,
    budget: usize,
    bytes_used: usize,
    dropped: u64,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new(TELEMETRY_EVENT_BUDGET_DEFAULT)
    }
}

impl EventLog {
    /// An empty log that will retain at most `budget_bytes` of NDJSON
    /// (each line's cost includes its trailing newline).
    pub fn new(budget_bytes: usize) -> Self {
        EventLog {
            events: Vec::new(),
            budget: budget_bytes,
            bytes_used: 0,
            dropped: 0,
        }
    }

    /// Append `e` if it fits the remaining budget; count it as dropped
    /// otherwise. Deterministic: depends only on the event sequence.
    pub fn push(&mut self, e: Event) {
        let cost = e.line_len() + 1;
        if self.bytes_used + cost > self.budget {
            self.dropped += 1;
            return;
        }
        self.bytes_used += cost;
        self.events.push(e);
    }

    /// Events retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events rejected by the budget (plus any carried over by merges).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exact NDJSON bytes the retained events will serialize to.
    pub fn bytes_used(&self) -> usize {
        self.bytes_used
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Append all of `other`'s retained events (re-checking this log's
    /// budget) and carry over its drop count.
    pub fn merge(&mut self, other: &EventLog) {
        for e in &other.events {
            self.push(*e);
        }
        self.dropped += other.dropped;
    }

    /// Render the whole log as NDJSON (one line per event, each
    /// newline-terminated).
    pub fn to_ndjson(&self) -> String {
        let mut s = String::with_capacity(self.bytes_used);
        for e in &self.events {
            s.push_str(&e.line());
            s.push('\n');
        }
        s
    }
}

/// Convert one engine trace record to an [`Event`] (rep is always 0: the
/// bounded trace describes a single run).
pub fn trace_event(r: &TraceRecord) -> Event {
    let kind = match r.kind {
        TraceKind::Inject => EventKind::Inject,
        TraceKind::PortGrant => EventKind::PortGrant,
        TraceKind::StartupDone => EventKind::StartupDone,
        TraceKind::ChannelGrant => EventKind::ChannelGrant,
        TraceKind::ChannelWait => EventKind::ChannelWait,
        TraceKind::HeaderArrive => EventKind::Header,
        TraceKind::Deliver => EventKind::Deliver,
        TraceKind::Complete => EventKind::Complete,
        TraceKind::ChannelRelease => EventKind::ChannelRelease,
        TraceKind::SchedulePhase => EventKind::SchedulePhase,
    };
    let mut e = Event::new(r.time.as_ps(), kind, 0);
    if r.kind == TraceKind::SchedulePhase {
        // The phase number rides in the trace record's `message` slot; on
        // the wire it belongs in `q` so `msg` keeps message-id semantics.
        e.q = Some(r.message.0);
    } else if r.message.0 != u64::MAX {
        e.msg = Some(r.message.0);
    }
    e.node = r.node.map(|n| n.0);
    e.ch = r.channel.map(|c| c.0);
    e
}

/// Render a bounded engine trace as NDJSON, reusing the event schema.
pub fn trace_to_ndjson(trace: &Trace) -> String {
    let mut s = String::new();
    for r in trace.records() {
        s.push_str(&trace_event(r).line());
        s.push('\n');
    }
    s
}

/// The one NDJSON writer every export path goes through — the experiment
/// binaries' `--events` stream, `wormcast --trace-dump`, profile-event
/// appends and the serve layer's event files all format their lines
/// upstream and land here. Creates parent directories; `append` extends an
/// existing stream instead of replacing it.
///
/// # Errors
/// Propagates directory-creation and write failures.
pub fn write_ndjson(path: &std::path::Path, ndjson: &str, append: bool) -> std::io::Result<()> {
    use std::io::Write as _;
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut f = std::fs::File::options()
        .write(true)
        .create(true)
        .append(append)
        .truncate(!append)
        .open(path)?;
    f.write_all(ndjson.as_bytes())
}

/// A scalar value in a parsed NDJSON line.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// An unsigned integer field.
    U64(u64),
    /// A string field.
    Str(String),
}

/// Parse one NDJSON line as a flat JSON object of unsigned-integer and
/// string values (the only shapes the event schema emits). Returns the
/// key/value pairs in file order. The vendored serde facade cannot
/// deserialize, so schema validation uses this parser instead.
pub fn parse_line(line: &str) -> Result<Vec<(String, Scalar)>, String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    let err = |pos: usize, what: &str| format!("col {pos}: {what}");

    let expect = |pos: &mut usize, b: u8| -> Result<(), String> {
        if bytes.get(*pos) == Some(&b) {
            *pos += 1;
            Ok(())
        } else {
            Err(err(*pos, &format!("expected {:?}", b as char)))
        }
    };

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("col {pos}: expected '\"'", pos = *pos));
        }
        *pos += 1;
        let start = *pos;
        while let Some(&b) = bytes.get(*pos) {
            match b {
                b'"' => {
                    let s = std::str::from_utf8(&bytes[start..*pos])
                        .map_err(|_| "invalid utf8".to_string())?;
                    *pos += 1;
                    return Ok(s.to_string());
                }
                b'\\' => return Err(format!("col {pos}: escapes unsupported", pos = *pos)),
                _ => *pos += 1,
            }
        }
        Err("unterminated string".to_string())
    }

    fn parse_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
        let start = *pos;
        while bytes.get(*pos).is_some_and(|b| b.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == start {
            return Err(format!("col {pos}: expected digit", pos = *pos));
        }
        std::str::from_utf8(&bytes[start..*pos])
            .unwrap()
            .parse::<u64>()
            .map_err(|e| format!("col {start}: {e}"))
    }

    expect(&mut pos, b'{')?;
    let mut fields = Vec::new();
    if bytes.get(pos) == Some(&b'}') {
        pos += 1;
    } else {
        loop {
            let key = parse_string(bytes, &mut pos)?;
            expect(&mut pos, b':')?;
            let value = if bytes.get(pos) == Some(&b'"') {
                Scalar::Str(parse_string(bytes, &mut pos)?)
            } else {
                Scalar::U64(parse_u64(bytes, &mut pos)?)
            };
            fields.push((key, value));
            match bytes.get(pos) {
                Some(&b',') => pos += 1,
                Some(&b'}') => {
                    pos += 1;
                    break;
                }
                _ => return Err(err(pos, "expected ',' or '}'")),
            }
        }
    }
    if pos != bytes.len() {
        return Err(err(pos, "trailing bytes"));
    }
    Ok(fields)
}

/// Summary of a validated NDJSON event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NdjsonStats {
    /// Lines parsed.
    pub lines: usize,
    /// Distinct `(rep, msg)` pairs seen.
    pub messages: usize,
}

/// Validate a whole NDJSON event export: every line must parse as a flat
/// object with a `t_ps` integer and an `ev` string, and for every
/// `(rep, msg)` pair the timestamps must be non-decreasing in file order
/// (events of one message are emitted chronologically).
pub fn validate_ndjson(text: &str) -> Result<NdjsonStats, String> {
    let mut last_t: HashMap<(u64, u64), u64> = HashMap::new();
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        let fields = parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let t = match get("t_ps") {
            Some(Scalar::U64(t)) => *t,
            _ => return Err(format!("line {}: missing integer t_ps", i + 1)),
        };
        match get("ev") {
            Some(Scalar::Str(_)) => {}
            _ => return Err(format!("line {}: missing string ev", i + 1)),
        }
        let rep = match get("rep") {
            Some(Scalar::U64(r)) => *r,
            _ => return Err(format!("line {}: missing integer rep", i + 1)),
        };
        if let Some(Scalar::U64(msg)) = get("msg") {
            let prev = last_t.entry((rep, *msg)).or_insert(0);
            if t < *prev {
                return Err(format!(
                    "line {}: t_ps {} went backwards for rep {} msg {} (prev {})",
                    i + 1,
                    t,
                    rep,
                    msg,
                    prev
                ));
            }
            *prev = t;
        }
        lines += 1;
    }
    Ok(NdjsonStats {
        lines,
        messages: last_t.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_event() -> Event {
        Event {
            t_ps: 1_500_000,
            kind: EventKind::ChannelWait,
            rep: 12,
            msg: Some(3),
            node: Some(107),
            ch: Some(0),
            q: Some(4),
            flits: Some(100),
            name: None,
        }
    }

    #[test]
    fn line_len_matches_rendered_length() {
        let mut e = Event::new(0, EventKind::Inject, 0);
        assert_eq!(e.line().len(), e.line_len(), "{}", e.line());
        e.msg = Some(10);
        e.node = Some(9);
        assert_eq!(e.line().len(), e.line_len(), "{}", e.line());
        let f = full_event();
        assert_eq!(f.line().len(), f.line_len(), "{}", f.line());
        for kind in [
            EventKind::Inject,
            EventKind::PortGrant,
            EventKind::StartupDone,
            EventKind::Header,
            EventKind::ChannelWait,
            EventKind::ChannelGrant,
            EventKind::ChannelRelease,
            EventKind::Deliver,
            EventKind::Complete,
            EventKind::LinkDown,
            EventKind::LinkUp,
            EventKind::Reroute,
            EventKind::Stalled,
            EventKind::InvariantViolation,
            EventKind::SpanOpen,
            EventKind::SpanClose,
            EventKind::MetricSnapshot,
            EventKind::CacheHit,
            EventKind::CacheMiss,
            EventKind::Coalesced,
            EventKind::SchedulePhase,
        ] {
            let mut e = Event::new(u64::MAX, kind, u64::MAX);
            assert_eq!(e.line().len(), e.line_len(), "{}", e.line());
            e.name = Some("shard_barrier_wait_ns");
            assert_eq!(e.line().len(), e.line_len(), "{}", e.line());
        }
    }

    #[test]
    fn budget_bounds_bytes_and_counts_drops() {
        let e = Event::new(1, EventKind::Inject, 0);
        let cost = e.line_len() + 1;
        let mut log = EventLog::new(cost * 2);
        log.push(e);
        log.push(e);
        log.push(e);
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 1);
        assert_eq!(log.bytes_used(), cost * 2);
        assert_eq!(log.to_ndjson().len(), log.bytes_used());
    }

    #[test]
    fn rendered_lines_parse_back() {
        let f = full_event();
        let fields = parse_line(&f.line()).expect("line should parse");
        assert_eq!(fields[0], ("t_ps".to_string(), Scalar::U64(1_500_000)));
        assert_eq!(
            fields[1],
            ("ev".to_string(), Scalar::Str("channel_wait".to_string()))
        );
        assert_eq!(fields.last().unwrap().1, Scalar::U64(100));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_line("").is_err());
        assert!(parse_line("{").is_err());
        assert!(parse_line("{\"a\":1,}").is_err());
        assert!(parse_line("{\"a\":1} ").is_err());
        assert!(parse_line("{\"a\":-1}").is_err());
        assert!(parse_line("{\"a\":1.5}").is_err());
    }

    #[test]
    fn validator_accepts_log_and_rejects_time_travel() {
        let mut log = EventLog::new(1 << 16);
        let mut a = Event::new(10, EventKind::Inject, 0);
        a.msg = Some(0);
        let mut b = Event::new(20, EventKind::Complete, 0);
        b.msg = Some(0);
        log.push(a);
        log.push(b);
        let stats = validate_ndjson(&log.to_ndjson()).expect("valid");
        assert_eq!(stats.lines, 2);
        assert_eq!(stats.messages, 1);

        let mut bad = EventLog::new(1 << 16);
        bad.push(b);
        bad.push(a);
        assert!(validate_ndjson(&bad.to_ndjson()).is_err());
    }

    #[test]
    fn merge_respects_budget_and_carries_drops() {
        let e = Event::new(1, EventKind::Inject, 0);
        let cost = e.line_len() + 1;
        let mut a = EventLog::new(cost);
        a.push(e);
        let mut b = EventLog::new(cost * 2);
        b.push(e);
        b.push(e);
        b.push(e); // dropped in b
        a.merge(&b);
        assert_eq!(a.len(), 1);
        assert_eq!(a.dropped(), 2 + 1); // b's two retained don't fit + b's own drop
    }

    #[test]
    fn trace_round_trips_through_exporter() {
        use wormcast_network::message::MessageId;
        use wormcast_sim::SimTime;
        use wormcast_topology::NodeId;
        let mut t = Trace::default();
        t.enable(8);
        t.push(TraceRecord {
            time: SimTime::from_ps(5),
            kind: TraceKind::Inject,
            message: MessageId(0),
            node: Some(NodeId(3)),
            channel: None,
        });
        t.push(TraceRecord {
            time: SimTime::from_ps(9),
            kind: TraceKind::ChannelRelease,
            message: MessageId(u64::MAX),
            node: None,
            channel: None,
        });
        let nd = trace_to_ndjson(&t);
        let stats = validate_ndjson(&nd).expect("trace NDJSON should validate");
        assert_eq!(stats.lines, 2);
        assert!(nd.lines().nth(1).unwrap().contains("channel_release"));
        assert!(!nd.lines().nth(1).unwrap().contains("msg"));
    }
}
