//! Log-scale latency histograms with an exact, order-independent merge.
//!
//! The layout is HDR-style: values are raw simulator picoseconds (`u64`),
//! and each power-of-two octave above 8 ps is split into 8 sub-buckets of
//! equal width, so relative bucket error is bounded by 1/8 ≈ 12.5 % (and
//! quantile *midpoint* error by half that) across the full `u64` range.
//! Values below 8 ps get exact unit-width buckets. Because the layout is
//! fixed — no rescaling, no dynamic range negotiation — two histograms can
//! always be merged by adding counts bucket-for-bucket, and every moment is
//! kept in integer arithmetic (`u64`/`u128`), so merging is exactly
//! commutative and associative. That property is what lets the replication
//! harness fold per-worker telemetry in index order and produce
//! byte-identical output for any `--jobs` count.
//!
//! Floating point appears only at *summary* time: [`LatencyHistogram::export`]
//! converts the integer moments to microsecond statistics using the same
//! n−1 variance convention as `wormcast_stats::OnlineStats`.

use serde::Serialize;
use wormcast_sim::{SimDuration, PS_PER_US};

/// Sub-bucket resolution: each octave is split into `1 << SUB_BITS` buckets.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave.
const SUBS: usize = 1 << SUB_BITS;
/// First octave that gets sub-bucket treatment (values `< 8` are exact).
const FIRST_OCT: u32 = SUB_BITS;
/// Total number of buckets covering the full `u64` picosecond range.
pub const NUM_BUCKETS: usize = SUBS + (64 - FIRST_OCT as usize) * SUBS;

/// Bucket index of a picosecond value. Total order preserving.
#[inline]
fn bucket_index(ps: u64) -> usize {
    if ps < SUBS as u64 {
        return ps as usize;
    }
    let oct = 63 - ps.leading_zeros(); // >= FIRST_OCT
    let sub = ((ps >> (oct - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    SUBS * (oct - FIRST_OCT + 1) as usize + sub
}

/// Inclusive lower edge (in ps) of bucket `idx`.
#[inline]
fn bucket_lo(idx: usize) -> u64 {
    if idx < SUBS {
        return idx as u64;
    }
    let m = (idx / SUBS - 1) as u32;
    let sub = (idx % SUBS) as u64;
    (SUBS as u64 + sub) << m
}

/// Exclusive upper edge (in ps) of bucket `idx` (saturating at `u64::MAX`).
#[inline]
fn bucket_hi(idx: usize) -> u64 {
    if idx + 1 >= NUM_BUCKETS {
        u64::MAX
    } else {
        bucket_lo(idx + 1)
    }
}

/// A fixed-layout log-scale histogram of latencies in simulator picoseconds.
///
/// All state is integer, so [`merge`](LatencyHistogram::merge) is exact:
/// merging in any order (or any grouping) yields bit-identical state.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ps: u128,
    sum_sq_ps: u128,
    min_ps: u64,
    max_ps: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: vec![0; NUM_BUCKETS],
            total: 0,
            sum_ps: 0,
            sum_sq_ps: 0,
            min_ps: u64::MAX,
            max_ps: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a raw picosecond latency.
    #[inline]
    pub fn record_ps(&mut self, ps: u64) {
        self.counts[bucket_index(ps)] += 1;
        self.total += 1;
        self.sum_ps += ps as u128;
        self.sum_sq_ps += (ps as u128) * (ps as u128);
        self.min_ps = self.min_ps.min(ps);
        self.max_ps = self.max_ps.max(ps);
    }

    /// Record a [`SimDuration`].
    #[inline]
    pub fn record(&mut self, d: SimDuration) {
        self.record_ps(d.as_ps());
    }

    /// Record a latency expressed in microseconds (rounded to whole ps).
    #[inline]
    pub fn record_us(&mut self, us: f64) {
        self.record(SimDuration::from_us(us));
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Absorb another histogram. Exact: integer adds only, so the result is
    /// independent of merge order and grouping.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ps += other.sum_ps;
        self.sum_sq_ps += other.sum_sq_ps;
        self.min_ps = self.min_ps.min(other.min_ps);
        self.max_ps = self.max_ps.max(other.max_ps);
    }

    /// Mean in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (self.sum_ps as f64 / self.total as f64) / PS_PER_US as f64
    }

    /// Sample standard deviation in microseconds (n−1 convention, matching
    /// `wormcast_stats::OnlineStats`; 0 when fewer than two values).
    pub fn sd_us(&self) -> f64 {
        if self.total < 2 {
            return 0.0;
        }
        let n = self.total as f64;
        let s = self.sum_ps as f64;
        let ss = self.sum_sq_ps as f64;
        let var_ps2 = ((ss - s * s / n) / (n - 1.0)).max(0.0);
        var_ps2.sqrt() / PS_PER_US as f64
    }

    /// Coefficient of variation (sd / mean; 0 when the mean is 0).
    pub fn cv(&self) -> f64 {
        let m = self.mean_us();
        if m == 0.0 {
            0.0
        } else {
            self.sd_us() / m
        }
    }

    /// Approximate quantile in microseconds: the midpoint of the bucket
    /// holding the rank `ceil(q * n)` value, clamped to the exact observed
    /// `[min, max]`. Bucket layout bounds the relative error by ~6 %.
    pub fn quantile_us(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let lo = bucket_lo(idx);
                let hi = bucket_hi(idx);
                let mid = lo + (hi - lo) / 2;
                let clamped = mid.clamp(self.min_ps, self.max_ps);
                return clamped as f64 / PS_PER_US as f64;
            }
        }
        self.max_ps as f64 / PS_PER_US as f64
    }

    /// Summary + sparse bucket list for JSON export.
    pub fn export(&self) -> HistogramExport {
        let (min_us, max_us) = if self.total == 0 {
            (0.0, 0.0)
        } else {
            (
                self.min_ps as f64 / PS_PER_US as f64,
                self.max_ps as f64 / PS_PER_US as f64,
            )
        };
        let buckets = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(idx, &c)| BucketExport {
                lo_us: bucket_lo(idx) as f64 / PS_PER_US as f64,
                hi_us: bucket_hi(idx) as f64 / PS_PER_US as f64,
                count: c,
            })
            .collect();
        HistogramExport {
            count: self.total,
            mean_us: self.mean_us(),
            sd_us: self.sd_us(),
            cv: self.cv(),
            min_us,
            p50_us: self.quantile_us(0.50),
            p95_us: self.quantile_us(0.95),
            p99_us: self.quantile_us(0.99),
            max_us,
            buckets,
        }
    }
}

/// One occupied bucket in a [`HistogramExport`].
#[derive(Debug, Clone, Serialize)]
pub struct BucketExport {
    /// Inclusive lower edge in microseconds.
    pub lo_us: f64,
    /// Exclusive upper edge in microseconds.
    pub hi_us: f64,
    /// Values that fell in `[lo_us, hi_us)`.
    pub count: u64,
}

/// JSON-exportable summary of a [`LatencyHistogram`].
#[derive(Debug, Clone, Serialize)]
pub struct HistogramExport {
    /// Number of recorded values.
    pub count: u64,
    /// Mean in microseconds.
    pub mean_us: f64,
    /// Sample standard deviation in microseconds (n−1).
    pub sd_us: f64,
    /// Coefficient of variation.
    pub cv: f64,
    /// Exact observed minimum in microseconds.
    pub min_us: f64,
    /// Approximate median in microseconds.
    pub p50_us: f64,
    /// Approximate 95th percentile in microseconds.
    pub p95_us: f64,
    /// Approximate 99th percentile in microseconds.
    pub p99_us: f64,
    /// Exact observed maximum in microseconds.
    pub max_us: f64,
    /// Occupied buckets only (sparse).
    pub buckets: Vec<BucketExport>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut prev = 0usize;
        for &ps in &[
            0u64,
            1,
            7,
            8,
            9,
            15,
            16,
            17,
            31,
            32,
            1_000,
            1_000_000,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = bucket_index(ps);
            assert!(idx < NUM_BUCKETS, "idx {idx} out of range for {ps}");
            assert!(idx >= prev, "index not monotone at {ps}");
            prev = idx;
        }
    }

    #[test]
    fn bucket_edges_bracket_their_values() {
        for &ps in &[0u64, 5, 8, 13, 100, 12345, 987_654_321, u64::MAX - 1] {
            let idx = bucket_index(ps);
            assert!(bucket_lo(idx) <= ps);
            assert!(ps <= bucket_hi(idx) || idx + 1 == NUM_BUCKETS);
        }
    }

    #[test]
    fn edges_are_contiguous() {
        for idx in 0..NUM_BUCKETS - 1 {
            assert_eq!(bucket_hi(idx), bucket_lo(idx + 1), "gap at bucket {idx}");
        }
    }

    #[test]
    fn moments_match_direct_computation() {
        let vals = [3.0f64, 7.5, 7.5, 12.0, 99.25];
        let mut h = LatencyHistogram::new();
        for &v in &vals {
            h.record_us(v);
        }
        let n = vals.len() as f64;
        let mean = vals.iter().sum::<f64>() / n;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
        assert!((h.mean_us() - mean).abs() < 1e-6);
        assert!((h.sd_us() - var.sqrt()).abs() < 1e-6);
        assert!((h.cv() - var.sqrt() / mean).abs() < 1e-6);
    }

    #[test]
    fn merge_is_order_independent() {
        let mk = |vals: &[u64]| {
            let mut h = LatencyHistogram::new();
            for &v in vals {
                h.record_ps(v);
            }
            h
        };
        let a = mk(&[1, 100, 10_000]);
        let b = mk(&[42, 42, 5_000_000]);
        let c = mk(&[7, 1_000_000_000]);

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);

        let mut c_ba = c.clone();
        let mut ba = b.clone();
        ba.merge(&a);
        c_ba.merge(&ba);

        assert_eq!(ab_c.counts, c_ba.counts);
        assert_eq!(ab_c.sum_ps, c_ba.sum_ps);
        assert_eq!(ab_c.sum_sq_ps, c_ba.sum_sq_ps);
        assert_eq!(ab_c.min_ps, c_ba.min_ps);
        assert_eq!(ab_c.max_ps, c_ba.max_ps);
        assert_eq!(ab_c.total, c_ba.total);
    }

    #[test]
    fn quantiles_are_clamped_and_ordered() {
        let mut h = LatencyHistogram::new();
        for ps in (1..=1000u64).map(|i| i * 1_000) {
            h.record_ps(ps);
        }
        let p50 = h.quantile_us(0.50);
        let p95 = h.quantile_us(0.95);
        let p99 = h.quantile_us(0.99);
        assert!(p50 <= p95 && p95 <= p99);
        // Relative bucket error bound: midpoint within ~6.25% of true value.
        assert!((p50 - 0.5e-3 * 1000.0).abs() / 0.5 < 0.07, "p50={p50}");
        let ex = h.export();
        assert_eq!(ex.count, 1000);
        assert!(ex.min_us <= p50 && p99 <= ex.max_us);
    }

    #[test]
    fn empty_histogram_exports_zeros() {
        let ex = LatencyHistogram::new().export();
        assert_eq!(ex.count, 0);
        assert_eq!(ex.mean_us, 0.0);
        assert!(ex.buckets.is_empty());
    }
}
