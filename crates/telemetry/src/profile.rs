//! The versioned profile report: span tree + metrics registry, rendered as
//! deterministic-skeleton JSON plus a Prometheus text exposition.
//!
//! # Determinism contract
//!
//! The JSON rendering is hand-written so that every execution-dependent
//! datum lands on a line whose first key starts with `nd_`:
//!
//! * `"nd_span_wall_ns": [..]` — one line, wall-clock per span (indexed by
//!   `seq`);
//! * `"nd_series": {..}` — one line, every series of a non-deterministic
//!   metric id (per-shard values, wall clocks, queue depths, worker
//!   counts), however many there are.
//!
//! Everything else — schema version, the span tree structure, the full
//! metric-id catalog and the values of deterministic metrics — is byte
//! identical across `--jobs` and `--shards` for fixed physics. Stripping
//! the `nd_` lines (`grep -v '"nd_'`, or [`strip_nd`]) therefore yields a
//! byte-comparable skeleton; `ci.sh` and `tests/profile_schema.rs` enforce
//! exactly that.

use crate::events::{Event, EventKind};
use crate::registry::{MetricId, MetricKind, MetricsRegistry, SeriesKey};
use crate::span::SpanNode;
use std::io::Write as _;
use std::path::Path;

/// Profile report schema version.
pub const PROFILE_SCHEMA: u64 = 1;

/// Replication stamp used for driver-level profile events in the NDJSON
/// stream (no replication owns them).
pub const PROFILE_EVENT_REP: u64 = u64::MAX;

/// A complete profile of one driver run.
#[derive(Debug)]
pub struct ProfileReport {
    /// Experiment / driver name (e.g. `"fig1"`).
    pub experiment: String,
    /// Span tree structure, pre-order.
    pub spans: Vec<SpanNode>,
    /// Wall-clock nanoseconds per span, indexed by [`SpanNode::seq`]
    /// (execution-dependent; rendered on an `nd_` line).
    pub nd_span_wall_ns: Vec<u64>,
    /// The merged metrics registry.
    pub metrics: MetricsRegistry,
}

impl ProfileReport {
    /// A report over the given spans and registry.
    pub fn new(
        experiment: impl Into<String>,
        spans: Vec<SpanNode>,
        nd_span_wall_ns: Vec<u64>,
        metrics: MetricsRegistry,
    ) -> Self {
        ProfileReport {
            experiment: experiment.into(),
            spans,
            nd_span_wall_ns,
            metrics,
        }
    }

    /// Render the JSON report. Hand-written (no serde) so the
    /// non-deterministic content occupies exactly the `nd_`-keyed lines.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {PROFILE_SCHEMA},\n"));
        out.push_str("  \"tool\": \"wormcast\",\n");
        out.push_str("  \"kind\": \"profile\",\n");
        out.push_str(&format!(
            "  \"experiment\": \"{}\",\n",
            escape(&self.experiment)
        ));
        out.push_str("  \"spans\": [\n");
        for (i, s) in self.spans.iter().enumerate() {
            let comma = if i + 1 < self.spans.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"seq\": {}, \"depth\": {}, \"name\": \"{}\"}}{comma}\n",
                s.seq,
                s.depth,
                escape(s.name)
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"nd_span_wall_ns\": [");
        for (i, ns) in self.nd_span_wall_ns.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&ns.to_string());
        }
        out.push_str("],\n");
        out.push_str("  \"metrics\": [\n");
        for (i, &id) in MetricId::ALL.iter().enumerate() {
            let comma = if i + 1 < MetricId::ALL.len() { "," } else { "" };
            if id.deterministic() {
                let value = match id.kind() {
                    MetricKind::Counter => self.metrics.counter_total(id),
                    MetricKind::Gauge => self.metrics.gauge_overall(id),
                    MetricKind::Histogram => self
                        .metrics
                        .hist(SeriesKey::plain(id))
                        .map_or(0, |h| h.count()),
                };
                out.push_str(&format!(
                    "    {{\"id\": \"{}\", \"kind\": \"{}\", \"deterministic\": true, \
                     \"value\": {value}}}{comma}\n",
                    id.name(),
                    id.kind().name()
                ));
            } else {
                out.push_str(&format!(
                    "    {{\"id\": \"{}\", \"kind\": \"{}\", \"deterministic\": false}}{comma}\n",
                    id.name(),
                    id.kind().name()
                ));
            }
        }
        out.push_str("  ],\n");
        out.push_str("  \"nd_series\": {");
        for (i, (k, v)) in self.metrics.nd_scalar_series().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {v}", escape(k)));
        }
        out.push_str("}\n");
        out.push_str("}\n");
        out
    }

    /// Render the Prometheus text exposition of the registry.
    pub fn to_prom(&self) -> String {
        self.metrics.to_prom()
    }

    /// Render the driver-level NDJSON events: `span_open`/`span_close`
    /// along the tree, then one `metric_snapshot` per deterministic metric.
    /// Timestamps are a deterministic sequence counter (not wall clock), so
    /// appending these lines to an event stream keeps it schema-valid.
    pub fn events_ndjson(&self) -> String {
        let mut out = String::new();
        let mut t = 0u64;
        let mut emit = |kind: EventKind, name: &'static str, q: Option<u64>| {
            let mut e = Event::new(t, kind, PROFILE_EVENT_REP);
            e.name = Some(name);
            e.q = q;
            out.push_str(&e.line());
            out.push('\n');
            t += 1;
        };
        // Reconstruct open/close order from the pre-order + depth encoding.
        let mut open: Vec<&SpanNode> = Vec::new();
        for s in &self.spans {
            while open.last().is_some_and(|o| o.depth >= s.depth) {
                let o = open.pop().expect("non-empty");
                emit(EventKind::SpanClose, o.name, Some(o.seq));
            }
            emit(EventKind::SpanOpen, s.name, Some(s.seq));
            open.push(s);
        }
        while let Some(o) = open.pop() {
            emit(EventKind::SpanClose, o.name, Some(o.seq));
        }
        for &id in MetricId::ALL.iter().filter(|id| id.deterministic()) {
            let value = match id.kind() {
                MetricKind::Counter => self.metrics.counter_total(id),
                MetricKind::Gauge => self.metrics.gauge_overall(id),
                MetricKind::Histogram => self
                    .metrics
                    .hist(SeriesKey::plain(id))
                    .map_or(0, |h| h.count()),
            };
            emit(EventKind::MetricSnapshot, id.name(), Some(value));
        }
        out
    }

    /// Write the JSON report to `json_path` and the Prometheus exposition
    /// to `prom_path`, creating parent directories as needed.
    pub fn write(&self, json_path: &Path, prom_path: &Path) -> std::io::Result<()> {
        for p in [json_path, prom_path] {
            if let Some(dir) = p.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir)?;
                }
            }
        }
        let mut f = std::fs::File::create(json_path)?;
        f.write_all(self.to_json().as_bytes())?;
        let mut f = std::fs::File::create(prom_path)?;
        f.write_all(self.to_prom().as_bytes())
    }
}

/// The deterministic skeleton of a rendered report: every line whose
/// content carries an `nd_` key removed. Mirrors the `grep -v '"nd_'` the
/// CI gate applies before byte-comparing reports across `--jobs` /
/// `--shards`.
pub fn strip_nd(json: &str) -> String {
    json.lines()
        .filter(|l| !l.contains("\"nd_"))
        .map(|l| format!("{l}\n"))
        .collect()
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Profiler;

    fn report(shards: u32, wall: u64) -> ProfileReport {
        let mut p = Profiler::new();
        p.open("fig1");
        p.phase("setup");
        p.phase("run");
        p.phase("merge");
        p.phase("emit");
        let (spans, _) = p.finish();
        let nd_wall = vec![wall; spans.len()];
        let mut m = MetricsRegistry::new();
        m.inc_by(SeriesKey::plain(MetricId::EngineWheelBucketScans), 42);
        m.gauge_max(SeriesKey::plain(MetricId::EngineArenaMsgsHighwater), 9);
        for s in 0..shards {
            m.inc_by(SeriesKey::shard(MetricId::ShardBarrierWaitNs, s), wall);
            m.gauge_max(SeriesKey::shard(MetricId::ShardArenaMsgsHighwater, s), 5);
        }
        ProfileReport::new("fig1", spans, nd_wall, m)
    }

    #[test]
    fn skeleton_is_invariant_across_geometry() {
        // Different shard cardinality and wall clocks; identical skeleton.
        let a = report(1, 10).to_json();
        let b = report(4, 999_999).to_json();
        assert_ne!(a, b, "nd content must differ");
        assert_eq!(strip_nd(&a), strip_nd(&b), "skeleton must not differ");
    }

    #[test]
    fn report_lists_full_catalog_and_all_spans() {
        // The vendored serde facade has no deserializer, so validate the
        // hand-rendered layout at the line level.
        let r = report(2, 5);
        let json = r.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains(&format!("\"schema\": {PROFILE_SCHEMA},")));
        assert!(json.contains("\"kind\": \"profile\","));
        let metric_lines = json.lines().filter(|l| l.contains("\"id\": \"")).count();
        assert_eq!(
            metric_lines,
            MetricId::ALL.len(),
            "metrics array lists the full catalog"
        );
        let span_lines = json.lines().filter(|l| l.contains("\"seq\": ")).count();
        assert_eq!(span_lines, 5, "one line per span");
        assert!(json.contains("shard_barrier_wait_ns{shard=\\\"1\\\"}"));
        let wall_line = json
            .lines()
            .find(|l| l.contains("\"nd_span_wall_ns\""))
            .expect("wall line present");
        assert_eq!(
            wall_line.matches(", ").count() + 1,
            5,
            "one wall sample per span: {wall_line}"
        );
    }

    #[test]
    fn nd_lines_carry_all_shard_series() {
        let json = report(4, 7).to_json();
        for s in 0..4 {
            assert!(
                json.contains(&format!("shard_barrier_wait_ns{{shard=\\\"{s}\\\"}}")),
                "missing shard {s} barrier series"
            );
        }
        for line in json.lines().filter(|l| l.contains("shard_barrier")) {
            assert!(
                line.contains("\"nd_") || line.contains("\"deterministic\": false"),
                "shard series leaked onto a deterministic line: {line}"
            );
        }
    }

    #[test]
    fn events_render_balanced_spans_and_snapshots() {
        let r = report(1, 3);
        let nd = r.events_ndjson();
        let opens = nd.matches("\"ev\":\"span_open\"").count();
        let closes = nd.matches("\"ev\":\"span_close\"").count();
        assert_eq!(opens, 5);
        assert_eq!(closes, 5);
        assert!(nd.contains("\"ev\":\"metric_snapshot\""));
        assert!(nd.contains("\"name\":\"engine_arena_msgs_highwater\""));
        let stats = crate::events::validate_ndjson(&nd).expect("profile events validate");
        assert!(stats.lines >= 10);
    }
}
