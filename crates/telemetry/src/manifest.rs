//! Run provenance.
//!
//! A [`RunManifest`] records everything needed to reproduce (and trust) a
//! telemetry export: the experiment name, algorithms, topology shapes, the
//! master seed, worker count, payload length, start-up latency, replication
//! count, the crate version that produced it, and the wall-clock duration.
//!
//! The manifest lives in the *telemetry* export (`<name>.telemetry.json`),
//! never in the figure result JSON: result files must stay byte-identical
//! across `--jobs` counts and across machines, and `wall_ms` is inherently
//! nondeterministic. Determinism tests therefore zero `wall_ms` before
//! comparing exports — see `tests/determinism.rs`.

use serde::Serialize;

/// Schema version of the telemetry export format.
///
/// v2 added the `events_dropped` / `trace_dropped` loss accounting so
/// budget-truncated exports declare their losses in-band rather than only
/// as stderr warnings.
pub const MANIFEST_SCHEMA: u64 = 2;

/// Provenance record embedded in every telemetry export.
#[derive(Debug, Clone, Serialize)]
pub struct RunManifest {
    /// Telemetry export schema version ([`MANIFEST_SCHEMA`]).
    pub schema: u64,
    /// Producing tool (always `"wormcast"`).
    pub tool: String,
    /// Crate version that produced the export.
    pub version: String,
    /// Experiment driver name (`"fig1"`, `"fig2"`, …).
    pub experiment: String,
    /// Algorithms exercised, in driver order.
    pub algorithms: Vec<String>,
    /// Topology shapes exercised (e.g. `"8x8x8"`), in driver order.
    pub topologies: Vec<String>,
    /// Master RNG seed the replication streams were split from.
    pub master_seed: u64,
    /// Worker threads used (`--jobs`; does not affect results).
    pub jobs: u64,
    /// Broadcast payload length in flits.
    pub length_flits: u64,
    /// Start-up latency in microseconds.
    pub startup_us: f64,
    /// Replications per cell.
    pub runs: u64,
    /// Wall-clock duration of the run in milliseconds. Nondeterministic;
    /// zeroed by determinism tests before comparison.
    pub wall_ms: f64,
    /// Events rejected by the NDJSON byte budget across all merged frames
    /// (deterministic: depends only on the event sequence and budget).
    pub events_dropped: u64,
    /// Records evicted from the bounded engine trace ring, when tracing was
    /// active (deterministic).
    pub trace_dropped: u64,
}

impl RunManifest {
    /// A manifest for `experiment` with every other field defaulted; fill
    /// the public fields in before exporting.
    pub fn new(experiment: &str) -> Self {
        RunManifest {
            schema: MANIFEST_SCHEMA,
            tool: "wormcast".to_string(),
            version: env!("CARGO_PKG_VERSION").to_string(),
            experiment: experiment.to_string(),
            algorithms: Vec::new(),
            topologies: Vec::new(),
            master_seed: 0,
            jobs: 0,
            length_flits: 0,
            startup_us: 0.0,
            runs: 0,
            wall_ms: 0.0,
            events_dropped: 0,
            trace_dropped: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_serializes_with_stable_fields() {
        let mut m = RunManifest::new("fig1");
        m.algorithms = vec!["RD".into(), "DB".into()];
        m.topologies = vec!["8x8x8".into()];
        m.master_seed = 42;
        let json = serde_json::to_string(&m).expect("serialize");
        for key in [
            "\"schema\"",
            "\"tool\"",
            "\"version\"",
            "\"experiment\"",
            "\"algorithms\"",
            "\"topologies\"",
            "\"master_seed\"",
            "\"jobs\"",
            "\"length_flits\"",
            "\"startup_us\"",
            "\"runs\"",
            "\"wall_ms\"",
            "\"events_dropped\"",
            "\"trace_dropped\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"experiment\":\"fig1\""));
    }
}
