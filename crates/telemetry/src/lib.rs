//! `wormcast-telemetry` — the observability layer of the wormcast stack.
//!
//! PR 1 decoupled observation from simulation behind
//! `wormcast_network::MetricsSink`; this crate cashes that in. It provides:
//!
//! * [`hist::LatencyHistogram`] — log-scale (HDR-style) latency histograms
//!   with a fixed bucket layout and pure-integer state, so merging across
//!   replications is exact and order-independent;
//! * a phase-decomposing sink (built from [`Collector`]) recording, per
//!   message: injection→port-grant wait, start-up latency, per-hop channel
//!   wait, delivery latency and completion latency;
//! * [`heatmap::ChannelHeatmap`] — per-channel grant counts, busy time and
//!   max FIFO depth, plus per-node port grants and deliveries;
//! * [`events::EventLog`] — a byte-budgeted NDJSON event exporter (one line
//!   per `MetricsSink` callback, lazily serialized) and the flat-JSON
//!   parser/validator used by schema tests and CI;
//! * [`manifest::RunManifest`] — run provenance (seed, config, versions,
//!   wall clock) embedded in every telemetry export.
//!
//! # Zero cost when off
//!
//! Nothing here touches the engine unless a sink is attached. When no
//! telemetry is requested, the workload layer runs the exact same code path
//! as before this crate existed, and experiment outputs are byte-identical.
//!
//! # Determinism contract
//!
//! A [`TelemetryFrame`] is produced per replication and merged by the
//! harness **in replication-index order**. Because histogram and heatmap
//! merges are integer adds/maxes and event logs concatenate in order, the
//! merged frame — and its JSON export — is byte-identical for any `--jobs`
//! count. The only nondeterministic datum in an export is
//! `RunManifest::wall_ms`, which determinism tests zero before comparing.

#![warn(missing_docs)]

pub mod events;
pub mod heatmap;
pub mod hist;
pub mod manifest;
pub mod profile;
pub mod registry;
pub mod span;

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use serde::Serialize;
use wormcast_network::message::MessageId;
use wormcast_network::metrics::MetricsSink;
use wormcast_sim::SimTime;
use wormcast_topology::{ChannelId, NodeId};

pub use events::{Event, EventKind, EventLog};
pub use heatmap::{ChannelHeatmap, HeatmapExport};
pub use hist::{HistogramExport, LatencyHistogram};
pub use manifest::RunManifest;
pub use profile::{strip_nd, ProfileReport, PROFILE_SCHEMA};
pub use registry::{Log2Hist, MetricId, MetricKind, MetricsRegistry, SeriesKey};
pub use span::{Profiler, SpanNode};

/// Default NDJSON byte budget per replication frame (8 MiB).
pub const TELEMETRY_EVENT_BUDGET_DEFAULT: usize = 8 << 20;

/// What to collect. Constructed once per experiment run from the CLI flags
/// and shared (by reference) with every replication.
#[derive(Debug, Clone)]
pub struct TelemetrySpec {
    /// Record per-phase latency histograms.
    pub phases: bool,
    /// Record the per-channel/per-node contention heatmap.
    pub heatmap: bool,
    /// Record the NDJSON event stream.
    pub events: bool,
    /// Byte budget for the event stream, **per replication**.
    pub event_budget: usize,
    /// Scrape runtime metrics (engine/shard/harness counters) into the
    /// per-replication [`MetricsRegistry`].
    pub profile: bool,
}

impl Default for TelemetrySpec {
    /// Histograms + heatmap, no event stream, no runtime metrics.
    fn default() -> Self {
        TelemetrySpec {
            phases: true,
            heatmap: true,
            events: false,
            event_budget: TELEMETRY_EVENT_BUDGET_DEFAULT,
            profile: false,
        }
    }
}

impl TelemetrySpec {
    /// Everything on: histograms, heatmap, the NDJSON event stream and
    /// runtime metrics.
    pub fn full() -> Self {
        TelemetrySpec {
            events: true,
            profile: true,
            ..TelemetrySpec::default()
        }
    }
}

/// A [`TelemetrySpec`] plus the replication index it applies to — the
/// argument observed workload runs take. `Copy`, so call sites can pass it
/// through closures freely.
#[derive(Debug, Clone, Copy)]
pub struct Observe<'a> {
    /// What to collect.
    pub spec: &'a TelemetrySpec,
    /// Replication index, stamped into every event (`rep` field).
    pub rep: u64,
}

impl<'a> Observe<'a> {
    /// Observe replication `rep` with `spec`.
    pub fn new(spec: &'a TelemetrySpec, rep: u64) -> Self {
        Observe { spec, rep }
    }

    /// A collector for a topology with the given channel and node counts.
    pub fn collector(&self, num_channels: usize, num_nodes: usize) -> Collector {
        Collector::new(self.spec, self.rep, num_channels, num_nodes)
    }
}

/// Per-message scratch state for phase accounting.
#[derive(Debug, Clone, Copy)]
struct MsgState {
    inject_ps: u64,
    grant_ps: u64,
    wait_since: Option<u64>,
}

/// Per-phase latency histograms.
///
/// Phases decompose a message's life: `port_wait` (injection request →
/// port grant), `startup` (port grant → header enters router), one
/// `channel_wait` sample per grant that followed a FIFO wait, one
/// `delivery` sample per payload copy (injection → absorption), and one
/// `completion` sample per message (injection → tail at final destination).
#[derive(Debug, Clone, Default)]
pub struct PhaseHistograms {
    /// Injection request → injection-port grant.
    pub port_wait: LatencyHistogram,
    /// Port grant → start-up latency elapsed.
    pub startup: LatencyHistogram,
    /// FIFO join → channel grant (only waits that actually blocked).
    pub channel_wait: LatencyHistogram,
    /// Injection request → payload copy absorbed (one sample per copy).
    pub delivery: LatencyHistogram,
    /// Injection request → message complete.
    pub completion: LatencyHistogram,
}

impl PhaseHistograms {
    /// Absorb another set (exact, order-independent).
    pub fn merge(&mut self, other: &PhaseHistograms) {
        self.port_wait.merge(&other.port_wait);
        self.startup.merge(&other.startup);
        self.channel_wait.merge(&other.channel_wait);
        self.delivery.merge(&other.delivery);
        self.completion.merge(&other.completion);
    }
}

/// Mean accumulator for driver-reported per-operation CVs. Kept as a naive
/// `(count, sum)` pair so merges are order-independent up to f64 addition
/// order — which is fixed, because frames merge in replication-index order.
#[derive(Debug, Clone, Copy, Default)]
pub struct CvAccumulator {
    /// Operations recorded.
    pub count: u64,
    /// Sum of per-operation CVs.
    pub sum: f64,
}

impl CvAccumulator {
    /// Record one operation's CV.
    pub fn record(&mut self, cv: f64) {
        self.count += 1;
        self.sum += cv;
    }

    /// Mean CV (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Absorb another accumulator.
    pub fn merge(&mut self, other: &CvAccumulator) {
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// Reliability counters fed by the fault-injection subsystem. All plain
/// integer adds, so merging across replications is exact and
/// order-independent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ReliabilityCounters {
    /// Messages the delivery watchdog retired as stalled.
    pub stalled: u64,
    /// Destination copies lost to stalls (as reported by the engine).
    pub undelivered: u64,
    /// Adaptive headers that steered around at least one faulted channel.
    pub reroutes: u64,
    /// Links taken down by fault injection.
    pub link_failures: u64,
    /// Links restored after a transient outage.
    pub link_restores: u64,
}

impl ReliabilityCounters {
    /// Absorb another set (exact, order-independent).
    pub fn merge(&mut self, other: &ReliabilityCounters) {
        self.stalled += other.stalled;
        self.undelivered += other.undelivered;
        self.reroutes += other.reroutes;
        self.link_failures += other.link_failures;
        self.link_restores += other.link_restores;
    }
}

/// Everything collected about one replication (or, after merging, one
/// experiment cell).
#[derive(Debug, Clone, Default)]
pub struct TelemetryFrame {
    /// Engine-phase latency histograms (from the attached sink).
    pub phases: PhaseHistograms,
    /// Driver-side per-destination arrival latencies (what figure CVs are
    /// computed from), fed by the workload layer.
    pub arrivals: LatencyHistogram,
    /// Driver-reported per-operation CV mean; matches the figure drivers'
    /// reported CV to floating-point tolerance.
    pub op_cv: CvAccumulator,
    /// Reliability counters (nonzero only under fault injection).
    pub reliability: ReliabilityCounters,
    /// Contention heatmap, when enabled.
    pub heatmap: Option<ChannelHeatmap>,
    /// NDJSON event stream, when enabled.
    pub events: Option<EventLog>,
    /// Runtime metrics scraped from the engine / sharded runtime / harness,
    /// when profiling is enabled (empty otherwise; not in `FrameExport` —
    /// profile reports render it separately).
    pub metrics: MetricsRegistry,
    /// Scratch: in-flight message phase state (not exported, not merged).
    inflight: HashMap<u64, MsgState>,
}

impl TelemetryFrame {
    /// Record one per-destination arrival latency (µs) from the driver.
    pub fn record_arrival_us(&mut self, us: f64) {
        self.arrivals.record_us(us);
    }

    /// Record one operation's per-destination CV from the driver.
    pub fn record_op_cv(&mut self, cv: f64) {
        self.op_cv.record(cv);
    }

    /// Absorb another frame. Must be called in replication-index order for
    /// byte-identical exports (histograms/heatmaps merge exactly in any
    /// order; the event log concatenates and `op_cv` sums f64s, both of
    /// which are order-sensitive only in ordering of equal results).
    pub fn merge(&mut self, other: &TelemetryFrame) {
        self.phases.merge(&other.phases);
        self.arrivals.merge(&other.arrivals);
        self.op_cv.merge(&other.op_cv);
        self.reliability.merge(&other.reliability);
        match (&mut self.heatmap, &other.heatmap) {
            (Some(a), Some(b)) => a.merge(b),
            (None, Some(b)) => self.heatmap = Some(b.clone()),
            _ => {}
        }
        match (&mut self.events, &other.events) {
            (Some(a), Some(b)) => a.merge(b),
            (None, Some(b)) => self.events = Some(b.clone()),
            _ => {}
        }
        self.metrics.merge(&other.metrics);
    }

    /// JSON-exportable view, labelled (labels name experiment cells, e.g.
    /// `"512/DB"`).
    pub fn export(&self, label: &str) -> FrameExport {
        FrameExport {
            label: label.to_string(),
            port_wait: self.phases.port_wait.export(),
            startup: self.phases.startup.export(),
            channel_wait: self.phases.channel_wait.export(),
            delivery: self.phases.delivery.export(),
            completion: self.phases.completion.export(),
            arrivals: self.arrivals.export(),
            op_cv_mean: self.op_cv.mean(),
            op_cv_count: self.op_cv.count,
            reliability: self.reliability,
            events_retained: self.events.as_ref().map_or(0, |e| e.len() as u64),
            events_dropped: self.events.as_ref().map_or(0, |e| e.dropped()),
            heatmap: self.heatmap.as_ref().map(|h| h.export()),
        }
    }
}

/// JSON export of one (possibly merged) [`TelemetryFrame`].
#[derive(Debug, Clone, Serialize)]
pub struct FrameExport {
    /// Cell label (e.g. `"512/DB"`).
    pub label: String,
    /// Injection request → port grant.
    pub port_wait: HistogramExport,
    /// Port grant → start-up done.
    pub startup: HistogramExport,
    /// FIFO join → channel grant.
    pub channel_wait: HistogramExport,
    /// Injection → payload copy absorbed.
    pub delivery: HistogramExport,
    /// Injection → message complete.
    pub completion: HistogramExport,
    /// Driver-side per-destination arrival latencies.
    pub arrivals: HistogramExport,
    /// Mean of driver-reported per-operation CVs.
    pub op_cv_mean: f64,
    /// Operations behind `op_cv_mean`.
    pub op_cv_count: u64,
    /// Reliability counters (all zero outside fault-injection runs).
    pub reliability: ReliabilityCounters,
    /// Events retained in the NDJSON stream.
    pub events_retained: u64,
    /// Events dropped by the byte budget.
    pub events_dropped: u64,
    /// Contention heatmap, when enabled.
    pub heatmap: Option<HeatmapExport>,
}

/// Owner of a replication's [`TelemetryFrame`] while a sink observes into
/// it.
///
/// `Network::add_sink` consumes a `Box<dyn MetricsSink>` with no way to get
/// it back, so the collector keeps the frame behind an `Arc<Mutex<..>>` and
/// hands the network a lightweight handle ([`Collector::sink`]). After the
/// run, [`Collector::finish`] recovers the frame. Within one replication
/// everything is single-threaded, so the mutex is uncontended.
#[derive(Debug)]
pub struct Collector {
    shared: Arc<Mutex<TelemetryFrame>>,
    phases: bool,
    events: bool,
    rep: u64,
}

impl Collector {
    /// A collector for one replication over a topology with the given
    /// channel and node counts.
    pub fn new(spec: &TelemetrySpec, rep: u64, num_channels: usize, num_nodes: usize) -> Self {
        let frame = TelemetryFrame {
            heatmap: spec
                .heatmap
                .then(|| ChannelHeatmap::new(num_channels, num_nodes)),
            events: spec.events.then(|| EventLog::new(spec.event_budget)),
            ..TelemetryFrame::default()
        };
        Collector {
            shared: Arc::new(Mutex::new(frame)),
            phases: spec.phases,
            events: spec.events,
            rep,
        }
    }

    /// A sink handle to attach with `Network::add_sink`.
    pub fn sink(&self) -> Box<dyn MetricsSink> {
        Box::new(CollectorSink {
            shared: Arc::clone(&self.shared),
            phases: self.phases,
            events: self.events,
            rep: self.rep,
        })
    }

    /// Record one per-destination arrival latency (µs) from the driver.
    pub fn record_arrival_us(&self, us: f64) {
        self.shared.lock().unwrap().record_arrival_us(us);
    }

    /// Record one operation's per-destination CV from the driver.
    pub fn record_op_cv(&self, cv: f64) {
        self.shared.lock().unwrap().record_op_cv(cv);
    }

    /// Recover the collected frame. If the network (and thus the sink
    /// handle) is already dropped this is free; otherwise the frame is
    /// taken out from under the still-attached handle, which then observes
    /// into a discarded frame.
    pub fn finish(self) -> TelemetryFrame {
        match Arc::try_unwrap(self.shared) {
            Ok(m) => m.into_inner().unwrap(),
            Err(arc) => std::mem::take(&mut *arc.lock().unwrap()),
        }
    }
}

/// The `MetricsSink` handle a [`Collector`] attaches to a network.
struct CollectorSink {
    shared: Arc<Mutex<TelemetryFrame>>,
    phases: bool,
    events: bool,
    rep: u64,
}

impl CollectorSink {
    fn event(&self, now: SimTime, kind: EventKind) -> Event {
        Event::new(now.as_ps(), kind, self.rep)
    }
}

fn push_event(f: &mut TelemetryFrame, e: Event) {
    if let Some(log) = &mut f.events {
        log.push(e);
    }
}

impl MetricsSink for CollectorSink {
    fn on_inject(&mut self, now: SimTime, m: MessageId, src: NodeId) {
        let mut guard = self.shared.lock().unwrap();
        let f = &mut *guard;
        if self.phases {
            f.inflight.insert(
                m.0,
                MsgState {
                    inject_ps: now.as_ps(),
                    grant_ps: now.as_ps(),
                    wait_since: None,
                },
            );
        }
        if self.events {
            let mut e = self.event(now, EventKind::Inject);
            e.msg = Some(m.0);
            e.node = Some(src.0);
            push_event(f, e);
        }
    }

    fn on_port_grant(&mut self, now: SimTime, m: MessageId, node: NodeId) {
        let mut guard = self.shared.lock().unwrap();
        let f = &mut *guard;
        if self.phases {
            if let Some(st) = f.inflight.get_mut(&m.0) {
                st.grant_ps = now.as_ps();
                let wait = now.as_ps() - st.inject_ps;
                f.phases.port_wait.record_ps(wait);
            }
        }
        if let Some(h) = &mut f.heatmap {
            h.on_port_grant(node.index());
        }
        if self.events {
            let mut e = self.event(now, EventKind::PortGrant);
            e.msg = Some(m.0);
            e.node = Some(node.0);
            push_event(f, e);
        }
    }

    fn on_startup_done(&mut self, now: SimTime, m: MessageId, node: NodeId) {
        let mut guard = self.shared.lock().unwrap();
        let f = &mut *guard;
        if self.phases {
            if let Some(st) = f.inflight.get(&m.0) {
                let startup = now.as_ps() - st.grant_ps;
                f.phases.startup.record_ps(startup);
            }
        }
        if self.events {
            let mut e = self.event(now, EventKind::StartupDone);
            e.msg = Some(m.0);
            e.node = Some(node.0);
            push_event(f, e);
        }
    }

    fn on_header_hop(&mut self, now: SimTime, m: MessageId, at: NodeId, ch: ChannelId) {
        if !self.events {
            return;
        }
        let mut guard = self.shared.lock().unwrap();
        let mut e = self.event(now, EventKind::Header);
        e.msg = Some(m.0);
        e.node = Some(at.0);
        e.ch = Some(ch.0);
        push_event(&mut guard, e);
    }

    fn on_channel_wait(&mut self, now: SimTime, m: MessageId, ch: ChannelId, queue_len: usize) {
        let mut guard = self.shared.lock().unwrap();
        let f = &mut *guard;
        if self.phases {
            if let Some(st) = f.inflight.get_mut(&m.0) {
                st.wait_since = Some(now.as_ps());
            }
        }
        if let Some(h) = &mut f.heatmap {
            h.on_wait(ch.index(), queue_len);
        }
        if self.events {
            let mut e = self.event(now, EventKind::ChannelWait);
            e.msg = Some(m.0);
            e.ch = Some(ch.0);
            e.q = Some(queue_len as u64);
            push_event(f, e);
        }
    }

    fn on_channel_grant(&mut self, now: SimTime, m: MessageId, ch: ChannelId) {
        let mut guard = self.shared.lock().unwrap();
        let f = &mut *guard;
        if self.phases {
            if let Some(st) = f.inflight.get_mut(&m.0) {
                if let Some(since) = st.wait_since.take() {
                    let wait = now.as_ps() - since;
                    f.phases.channel_wait.record_ps(wait);
                }
            }
        }
        if let Some(h) = &mut f.heatmap {
            h.on_grant(ch.index(), now.as_ps());
        }
        if self.events {
            let mut e = self.event(now, EventKind::ChannelGrant);
            e.msg = Some(m.0);
            e.ch = Some(ch.0);
            push_event(f, e);
        }
    }

    fn on_channel_release(&mut self, now: SimTime, ch: ChannelId) {
        let mut guard = self.shared.lock().unwrap();
        let f = &mut *guard;
        if let Some(h) = &mut f.heatmap {
            h.on_release(ch.index(), now.as_ps());
        }
        if self.events {
            let mut e = self.event(now, EventKind::ChannelRelease);
            e.ch = Some(ch.0);
            push_event(f, e);
        }
    }

    fn on_deliver(&mut self, now: SimTime, m: MessageId, node: NodeId, flits: u64) {
        let mut guard = self.shared.lock().unwrap();
        let f = &mut *guard;
        if self.phases {
            if let Some(st) = f.inflight.get(&m.0) {
                let lat = now.as_ps() - st.inject_ps;
                f.phases.delivery.record_ps(lat);
            }
        }
        if let Some(h) = &mut f.heatmap {
            h.on_deliver(node.index());
        }
        if self.events {
            let mut e = self.event(now, EventKind::Deliver);
            e.msg = Some(m.0);
            e.node = Some(node.0);
            e.flits = Some(flits);
            push_event(f, e);
        }
    }

    fn on_complete(&mut self, now: SimTime, m: MessageId, node: NodeId) {
        let mut guard = self.shared.lock().unwrap();
        let f = &mut *guard;
        if self.phases {
            if let Some(st) = f.inflight.remove(&m.0) {
                let lat = now.as_ps() - st.inject_ps;
                f.phases.completion.record_ps(lat);
            }
        }
        if self.events {
            let mut e = self.event(now, EventKind::Complete);
            e.msg = Some(m.0);
            e.node = Some(node.0);
            push_event(f, e);
        }
    }

    fn on_link_failed(&mut self, now: SimTime, ch: ChannelId) {
        let mut guard = self.shared.lock().unwrap();
        let f = &mut *guard;
        f.reliability.link_failures += 1;
        if self.events {
            let mut e = self.event(now, EventKind::LinkDown);
            e.ch = Some(ch.0);
            push_event(f, e);
        }
    }

    fn on_link_restored(&mut self, now: SimTime, ch: ChannelId) {
        let mut guard = self.shared.lock().unwrap();
        let f = &mut *guard;
        f.reliability.link_restores += 1;
        if self.events {
            let mut e = self.event(now, EventKind::LinkUp);
            e.ch = Some(ch.0);
            push_event(f, e);
        }
    }

    fn on_reroute(&mut self, now: SimTime, m: MessageId, at: NodeId) {
        let mut guard = self.shared.lock().unwrap();
        let f = &mut *guard;
        f.reliability.reroutes += 1;
        if self.events {
            let mut e = self.event(now, EventKind::Reroute);
            e.msg = Some(m.0);
            e.node = Some(at.0);
            push_event(f, e);
        }
    }

    fn on_stalled(&mut self, now: SimTime, m: MessageId, at: NodeId, undelivered: u64) {
        let mut guard = self.shared.lock().unwrap();
        let f = &mut *guard;
        f.reliability.stalled += 1;
        f.reliability.undelivered += undelivered;
        if self.phases {
            // A stalled message never completes; drop its scratch state so
            // merged frames don't leak per-message state across operations.
            f.inflight.remove(&m.0);
        }
        if self.events {
            let mut e = self.event(now, EventKind::Stalled);
            e.msg = Some(m.0);
            e.node = Some(at.0);
            e.q = Some(undelivered);
            push_event(f, e);
        }
    }

    fn on_schedule_phase(&mut self, now: SimTime, phase: u32) {
        if !self.events {
            return;
        }
        let mut guard = self.shared.lock().unwrap();
        let mut e = self.event(now, EventKind::SchedulePhase);
        e.q = Some(phase as u64);
        push_event(&mut guard, e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(sink: &mut dyn MetricsSink) {
        let m = MessageId(0);
        sink.on_inject(SimTime::from_ps(0), m, NodeId(0));
        sink.on_port_grant(SimTime::from_ps(100), m, NodeId(0));
        sink.on_startup_done(SimTime::from_ps(1_600), m, NodeId(0));
        sink.on_channel_wait(SimTime::from_ps(1_600), m, ChannelId(1), 2);
        sink.on_channel_grant(SimTime::from_ps(2_000), m, ChannelId(1));
        sink.on_header_hop(SimTime::from_ps(2_100), m, NodeId(1), ChannelId(1));
        sink.on_deliver(SimTime::from_ps(3_000), m, NodeId(1), 100);
        sink.on_channel_release(SimTime::from_ps(3_100), ChannelId(1));
        sink.on_complete(SimTime::from_ps(3_000), m, NodeId(1));
    }

    #[test]
    fn collector_decomposes_phases() {
        let spec = TelemetrySpec::full();
        let collector = Collector::new(&spec, 7, 4, 2);
        let mut sink = collector.sink();
        drive(sink.as_mut());
        drop(sink);
        let frame = collector.finish();
        assert_eq!(frame.phases.port_wait.count(), 1);
        assert!((frame.phases.port_wait.mean_us() - 1e-4).abs() < 1e-12);
        assert_eq!(frame.phases.startup.count(), 1);
        assert_eq!(frame.phases.channel_wait.count(), 1);
        assert!((frame.phases.channel_wait.mean_us() - 4e-4).abs() < 1e-12);
        assert_eq!(frame.phases.delivery.count(), 1);
        assert_eq!(frame.phases.completion.count(), 1);
        let heat = frame.heatmap.as_ref().expect("heatmap enabled");
        assert_eq!(heat.max_queue_depth(), 2);
        let log = frame.events.as_ref().expect("events enabled");
        assert_eq!(log.len(), 9);
        let stats = events::validate_ndjson(&log.to_ndjson()).expect("valid NDJSON");
        assert_eq!(stats.lines, 9);
        assert_eq!(stats.messages, 1);
        assert!(log.to_ndjson().contains("\"rep\":7"));
    }

    #[test]
    fn finish_recovers_frame_even_with_live_sink() {
        let spec = TelemetrySpec::default();
        let collector = Collector::new(&spec, 0, 4, 2);
        let mut sink = collector.sink();
        drive(sink.as_mut());
        // Sink still alive: finish() must still return the data.
        let frame = collector.finish();
        assert_eq!(frame.phases.completion.count(), 1);
        drop(sink);
    }

    #[test]
    fn frame_merge_combines_everything() {
        let spec = TelemetrySpec::full();
        let mk = |rep| {
            let c = Collector::new(&spec, rep, 4, 2);
            let mut s = c.sink();
            drive(s.as_mut());
            drop(s);
            let mut f = c.finish();
            f.record_arrival_us(3.0e-6 * (rep + 1) as f64);
            f.record_op_cv(0.5);
            f
        };
        let mut a = mk(0);
        let b = mk(1);
        a.merge(&b);
        assert_eq!(a.phases.completion.count(), 2);
        assert_eq!(a.arrivals.count(), 2);
        assert_eq!(a.op_cv.count, 2);
        assert!((a.op_cv.mean() - 0.5).abs() < 1e-15);
        assert_eq!(a.events.as_ref().unwrap().len(), 18);
        let ex = a.export("cell");
        assert_eq!(ex.label, "cell");
        assert_eq!(ex.events_retained, 18);
        assert!(ex.heatmap.is_some());
    }

    #[test]
    fn reliability_counters_collect_and_merge() {
        let spec = TelemetrySpec::full();
        let mk = |rep| {
            let c = Collector::new(&spec, rep, 4, 2);
            let mut s = c.sink();
            s.on_link_failed(SimTime::from_ps(0), ChannelId(1));
            s.on_reroute(SimTime::from_ps(500), MessageId(0), NodeId(0));
            s.on_stalled(SimTime::from_ps(9_000), MessageId(1), NodeId(1), 3);
            s.on_link_restored(SimTime::from_ps(10_000), ChannelId(1));
            drop(s);
            c.finish()
        };
        let mut a = mk(0);
        let b = mk(1);
        a.merge(&b);
        assert_eq!(
            a.reliability,
            ReliabilityCounters {
                stalled: 2,
                undelivered: 6,
                reroutes: 2,
                link_failures: 2,
                link_restores: 2,
            }
        );
        let ex = a.export("cell");
        assert_eq!(ex.reliability.undelivered, 6);
        let log = a.events.as_ref().expect("events enabled");
        let nd = log.to_ndjson();
        let stats = events::validate_ndjson(&nd).expect("valid NDJSON");
        assert_eq!(stats.lines, 8);
        assert!(nd.contains("\"ev\":\"link_down\""));
        assert!(nd.contains("\"ev\":\"stalled\",\"rep\":1,\"msg\":1,\"node\":1,\"q\":3"));
    }

    #[test]
    fn disabled_spec_sections_stay_empty() {
        let spec = TelemetrySpec {
            phases: true,
            heatmap: false,
            events: false,
            event_budget: 0,
            profile: false,
        };
        let c = Collector::new(&spec, 0, 4, 2);
        let mut s = c.sink();
        drive(s.as_mut());
        drop(s);
        let f = c.finish();
        assert!(f.heatmap.is_none());
        assert!(f.events.is_none());
        assert_eq!(f.phases.completion.count(), 1);
    }
}
