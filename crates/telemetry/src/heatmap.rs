//! Per-channel / per-node contention heatmap.
//!
//! Aggregates, per channel: grant count, total busy time and the maximum
//! FIFO queue depth ever observed; per node: injection-port grants and
//! payload deliveries. All state is integer (`u64` picoseconds), so merging
//! heatmaps from different replications of the *same* topology is exact and
//! order-independent (adds and maxes commute). The JSON export is sparse —
//! only channels/nodes that saw traffic appear — which keeps fig-scale
//! exports small even on 16×16×16 meshes.

use serde::Serialize;
use wormcast_sim::PS_PER_US;

/// Contention totals over a fixed-size topology.
#[derive(Debug, Clone, Default)]
pub struct ChannelHeatmap {
    /// Per-channel grant counts, indexed by `ChannelId::index()`.
    grants: Vec<u64>,
    /// Per-channel busy time in picoseconds.
    busy_ps: Vec<u64>,
    /// Per-channel maximum observed FIFO depth (waiters incl. the newest).
    max_queue: Vec<u64>,
    /// Scratch: when the channel was last granted (ps), for busy accounting.
    busy_since: Vec<u64>,
    /// Per-node injection-port grants.
    port_grants: Vec<u64>,
    /// Per-node payload deliveries.
    deliveries: Vec<u64>,
}

impl ChannelHeatmap {
    /// A heatmap over `num_channels` channels and `num_nodes` nodes.
    pub fn new(num_channels: usize, num_nodes: usize) -> Self {
        ChannelHeatmap {
            grants: vec![0; num_channels],
            busy_ps: vec![0; num_channels],
            max_queue: vec![0; num_channels],
            busy_since: vec![0; num_channels],
            port_grants: vec![0; num_nodes],
            deliveries: vec![0; num_nodes],
        }
    }

    /// Channel `ch` was granted at time `now_ps`.
    #[inline]
    pub fn on_grant(&mut self, ch: usize, now_ps: u64) {
        self.grants[ch] += 1;
        self.busy_since[ch] = now_ps;
    }

    /// Channel `ch` was released at time `now_ps`.
    #[inline]
    pub fn on_release(&mut self, ch: usize, now_ps: u64) {
        self.busy_ps[ch] += now_ps.saturating_sub(self.busy_since[ch]);
    }

    /// A header joined the FIFO of channel `ch`; `queue_len` includes it.
    #[inline]
    pub fn on_wait(&mut self, ch: usize, queue_len: usize) {
        self.max_queue[ch] = self.max_queue[ch].max(queue_len as u64);
    }

    /// Node `node` was granted an injection port.
    #[inline]
    pub fn on_port_grant(&mut self, node: usize) {
        self.port_grants[node] += 1;
    }

    /// Node `node` absorbed a payload copy.
    #[inline]
    pub fn on_deliver(&mut self, node: usize) {
        self.deliveries[node] += 1;
    }

    /// Absorb another heatmap of the same topology (adds + maxes; exact).
    ///
    /// # Panics
    /// If the two heatmaps cover different channel or node counts.
    pub fn merge(&mut self, other: &ChannelHeatmap) {
        assert_eq!(self.grants.len(), other.grants.len(), "channel count");
        assert_eq!(self.port_grants.len(), other.port_grants.len(), "nodes");
        for (a, b) in self.grants.iter_mut().zip(&other.grants) {
            *a += b;
        }
        for (a, b) in self.busy_ps.iter_mut().zip(&other.busy_ps) {
            *a += b;
        }
        for (a, b) in self.max_queue.iter_mut().zip(&other.max_queue) {
            *a = (*a).max(*b);
        }
        for (a, b) in self.port_grants.iter_mut().zip(&other.port_grants) {
            *a += b;
        }
        for (a, b) in self.deliveries.iter_mut().zip(&other.deliveries) {
            *a += b;
        }
    }

    /// Deepest FIFO seen on any channel.
    pub fn max_queue_depth(&self) -> u64 {
        self.max_queue.iter().copied().max().unwrap_or(0)
    }

    /// Sparse JSON export: only channels/nodes with any activity.
    pub fn export(&self) -> HeatmapExport {
        let channels = (0..self.grants.len())
            .filter(|&i| self.grants[i] > 0 || self.max_queue[i] > 0)
            .map(|i| ChannelCell {
                channel: i as u64,
                grants: self.grants[i],
                busy_us: self.busy_ps[i] as f64 / PS_PER_US as f64,
                max_queue: self.max_queue[i],
            })
            .collect();
        let nodes = (0..self.port_grants.len())
            .filter(|&i| self.port_grants[i] > 0 || self.deliveries[i] > 0)
            .map(|i| NodeCell {
                node: i as u64,
                port_grants: self.port_grants[i],
                deliveries: self.deliveries[i],
            })
            .collect();
        HeatmapExport {
            max_queue_depth: self.max_queue_depth(),
            channels,
            nodes,
        }
    }
}

/// One active channel in a [`HeatmapExport`].
#[derive(Debug, Clone, Serialize)]
pub struct ChannelCell {
    /// `ChannelId::index()` of the channel.
    pub channel: u64,
    /// Times the channel was granted.
    pub grants: u64,
    /// Total time occupied, microseconds.
    pub busy_us: f64,
    /// Deepest FIFO observed on this channel.
    pub max_queue: u64,
}

/// One active node in a [`HeatmapExport`].
#[derive(Debug, Clone, Serialize)]
pub struct NodeCell {
    /// `NodeId::index()` of the node.
    pub node: u64,
    /// Injection-port grants at this node.
    pub port_grants: u64,
    /// Payload copies absorbed by this node.
    pub deliveries: u64,
}

/// JSON-exportable view of a [`ChannelHeatmap`].
#[derive(Debug, Clone, Serialize)]
pub struct HeatmapExport {
    /// Deepest FIFO seen anywhere.
    pub max_queue_depth: u64,
    /// Active channels only (sparse).
    pub channels: Vec<ChannelCell>,
    /// Active nodes only (sparse).
    pub nodes: Vec<NodeCell>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_time_integrates_grant_release() {
        let mut h = ChannelHeatmap::new(4, 2);
        h.on_grant(1, 1_000);
        h.on_release(1, 4_000);
        h.on_grant(1, 10_000);
        h.on_release(1, 11_000);
        let ex = h.export();
        assert_eq!(ex.channels.len(), 1);
        assert_eq!(ex.channels[0].grants, 2);
        assert!((ex.channels[0].busy_us - 4e-3).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_and_maxes() {
        let mut a = ChannelHeatmap::new(2, 2);
        a.on_grant(0, 0);
        a.on_release(0, 100);
        a.on_wait(0, 3);
        a.on_port_grant(1);
        let mut b = ChannelHeatmap::new(2, 2);
        b.on_grant(0, 0);
        b.on_release(0, 50);
        b.on_wait(0, 5);
        b.on_deliver(1);
        a.merge(&b);
        let ex = a.export();
        assert_eq!(ex.channels[0].grants, 2);
        assert_eq!(ex.channels[0].max_queue, 5);
        assert_eq!(ex.max_queue_depth, 5);
        assert_eq!(ex.nodes.len(), 1);
        assert_eq!(ex.nodes[0].port_grants, 1);
        assert_eq!(ex.nodes[0].deliveries, 1);
    }

    #[test]
    #[should_panic(expected = "channel count")]
    fn merge_rejects_mismatched_topology() {
        let mut a = ChannelHeatmap::new(2, 2);
        a.merge(&ChannelHeatmap::new(3, 2));
    }
}
