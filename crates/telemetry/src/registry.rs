//! The runtime metrics registry: counters, gauges and log₂ histograms with
//! a static metric-id catalog, merged exactly across replications.
//!
//! Simulation physics never writes here directly — the engine and the
//! sharded runtime expose cheap plain-integer stats accessors, and the
//! workload layer scrapes them into a per-replication registry when
//! profiling is on. Registries then merge in replication-index order like
//! every other telemetry aggregate; because counter merge is addition,
//! gauge merge is `max` and histogram merge is element-wise addition, the
//! merged registry is independent of merge order and grouping ("lock-free"
//! in the sense that the hot path shares nothing and the fold needs no
//! locks).
//!
//! # Determinism
//!
//! Each [`MetricId`] declares whether its value is *deterministic* —
//! invariant across `--jobs` and `--shards` for fixed physics — or
//! execution-dependent (wall-clock durations, spin/yield behaviour, and any
//! quantity attributed per shard, whose very cardinality follows the
//! partition geometry). Profile reports render execution-dependent series
//! on `nd_`-marked lines so determinism comparisons can strip them; see
//! `DESIGN.md` §4.7.

use std::collections::BTreeMap;

/// What a metric measures and how it merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone count; merge is addition.
    Counter,
    /// High-water mark; merge is `max`.
    Gauge,
    /// Log₂-bucketed value distribution; merge is element-wise addition.
    Histogram,
}

impl MetricKind {
    /// Prometheus type name.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// The static metric catalog. Every series a profile report can carry is
/// one of these ids, optionally labelled with a shard index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MetricId {
    /// Peak live-message arena occupancy of a single (unsharded) engine.
    EngineArenaMsgsHighwater,
    /// Events ever scheduled on the engine's calendar wheel.
    EngineWheelEventsScheduled,
    /// Calendar-wheel bucket scans (earliest-bucket searches).
    EngineWheelBucketScans,
    /// Delivery-watchdog arms (stall checks scheduled).
    EngineWatchdogArms,
    /// In-flight adaptive re-routes around faulted channels.
    EngineReroutes,
    /// Messages retired as stalled by the delivery watchdog.
    EngineStalls,
    /// Conservative windows a shard executed.
    ShardWindowsExecuted,
    /// Distribution of executed window widths (horizon − t₀, ps).
    ShardWindowWidthPs,
    /// Cross-shard transfers (handoffs, releases, injections) applied.
    ShardCrossingsApplied,
    /// Peak live-message map occupancy of a shard.
    ShardArenaMsgsHighwater,
    /// Nanoseconds a shard spent waiting at round barriers.
    ShardBarrierWaitNs,
    /// Barrier waits that exhausted the spin budget and yielded.
    ShardSpinYieldTransitions,
    /// Replications executed by the harness.
    HarnessReplications,
    /// Distribution of per-replication wall-clock (ns).
    HarnessRepWallNs,
    /// Peak reorder-buffer depth while folding out-of-order results.
    HarnessQueueDepthMax,
    /// Worker threads the harness ran with.
    HarnessWorkers,
    /// NDJSON events dropped by the per-replication byte budget.
    EventsDropped,
    /// Engine trace records dropped by the ring-buffer bound.
    TraceDropped,
    /// Requests the serve layer accepted (any tier).
    ServeRequests,
    /// Serve requests answered from the completed-result cache.
    ServeCacheHits,
    /// Serve requests that joined an identical in-flight run.
    ServeCoalesced,
    /// Engine runs the serve layer actually executed (cold misses).
    ServeRunsExecuted,
}

impl MetricId {
    /// Every metric id, in catalog (render) order.
    pub const ALL: [MetricId; 22] = [
        MetricId::EngineArenaMsgsHighwater,
        MetricId::EngineWheelEventsScheduled,
        MetricId::EngineWheelBucketScans,
        MetricId::EngineWatchdogArms,
        MetricId::EngineReroutes,
        MetricId::EngineStalls,
        MetricId::ShardWindowsExecuted,
        MetricId::ShardWindowWidthPs,
        MetricId::ShardCrossingsApplied,
        MetricId::ShardArenaMsgsHighwater,
        MetricId::ShardBarrierWaitNs,
        MetricId::ShardSpinYieldTransitions,
        MetricId::HarnessReplications,
        MetricId::HarnessRepWallNs,
        MetricId::HarnessQueueDepthMax,
        MetricId::HarnessWorkers,
        MetricId::EventsDropped,
        MetricId::TraceDropped,
        MetricId::ServeRequests,
        MetricId::ServeCacheHits,
        MetricId::ServeCoalesced,
        MetricId::ServeRunsExecuted,
    ];

    /// Stable wire name (bare; the Prometheus exposition prefixes
    /// `wormcast_`).
    pub fn name(self) -> &'static str {
        match self {
            MetricId::EngineArenaMsgsHighwater => "engine_arena_msgs_highwater",
            MetricId::EngineWheelEventsScheduled => "engine_wheel_events_scheduled",
            MetricId::EngineWheelBucketScans => "engine_wheel_bucket_scans",
            MetricId::EngineWatchdogArms => "engine_watchdog_arms",
            MetricId::EngineReroutes => "engine_reroutes",
            MetricId::EngineStalls => "engine_stalls",
            MetricId::ShardWindowsExecuted => "shard_windows_executed",
            MetricId::ShardWindowWidthPs => "shard_window_width_ps",
            MetricId::ShardCrossingsApplied => "shard_crossings_applied",
            MetricId::ShardArenaMsgsHighwater => "shard_arena_msgs_highwater",
            MetricId::ShardBarrierWaitNs => "shard_barrier_wait_ns",
            MetricId::ShardSpinYieldTransitions => "shard_spin_yield_transitions",
            MetricId::HarnessReplications => "harness_replications",
            MetricId::HarnessRepWallNs => "harness_rep_wall_ns",
            MetricId::HarnessQueueDepthMax => "harness_queue_depth_max",
            MetricId::HarnessWorkers => "harness_workers",
            MetricId::EventsDropped => "events_dropped",
            MetricId::TraceDropped => "trace_dropped",
            MetricId::ServeRequests => "serve_requests",
            MetricId::ServeCacheHits => "serve_cache_hits",
            MetricId::ServeCoalesced => "serve_coalesced",
            MetricId::ServeRunsExecuted => "serve_runs_executed",
        }
    }

    /// The metric's kind (merge semantics and Prometheus type).
    pub fn kind(self) -> MetricKind {
        match self {
            MetricId::EngineArenaMsgsHighwater
            | MetricId::ShardArenaMsgsHighwater
            | MetricId::HarnessQueueDepthMax
            | MetricId::HarnessWorkers => MetricKind::Gauge,
            MetricId::ShardWindowWidthPs | MetricId::HarnessRepWallNs => MetricKind::Histogram,
            _ => MetricKind::Counter,
        }
    }

    /// Whether the merged value is invariant across `--jobs` / `--shards`
    /// for fixed physics. Non-deterministic ids are rendered on `nd_` lines
    /// in profile reports and excluded from determinism comparisons; every
    /// `shard_*` id is non-deterministic because its series *cardinality*
    /// follows the partition geometry, and the wheel counters are
    /// non-deterministic because each shard runs its own wheel (bucket
    /// scans and crossing reschedules track the executor geometry, not the
    /// physics).
    pub fn deterministic(self) -> bool {
        !matches!(
            self,
            MetricId::EngineWheelEventsScheduled
                | MetricId::EngineWheelBucketScans
                | MetricId::ShardWindowsExecuted
                | MetricId::ShardWindowWidthPs
                | MetricId::ShardCrossingsApplied
                | MetricId::ShardArenaMsgsHighwater
                | MetricId::ShardBarrierWaitNs
                | MetricId::ShardSpinYieldTransitions
                | MetricId::HarnessRepWallNs
                | MetricId::HarnessQueueDepthMax
                | MetricId::HarnessWorkers
                | MetricId::ServeRequests
                | MetricId::ServeCacheHits
                | MetricId::ServeCoalesced
                | MetricId::ServeRunsExecuted
        )
    }

    /// One-line help text for the Prometheus exposition.
    pub fn help(self) -> &'static str {
        match self {
            MetricId::EngineArenaMsgsHighwater => {
                "Peak live-message arena occupancy of the single engine"
            }
            MetricId::EngineWheelEventsScheduled => {
                "Events scheduled on the engine's calendar wheel"
            }
            MetricId::EngineWheelBucketScans => {
                "Calendar-wheel earliest-bucket scans (pop/peek searches)"
            }
            MetricId::EngineWatchdogArms => "Delivery-watchdog stall checks armed",
            MetricId::EngineReroutes => "In-flight adaptive re-routes around faulted channels",
            MetricId::EngineStalls => "Messages retired as stalled by the delivery watchdog",
            MetricId::ShardWindowsExecuted => "Conservative windows executed, per shard",
            MetricId::ShardWindowWidthPs => "Executed window width (horizon - t0), picoseconds",
            MetricId::ShardCrossingsApplied => {
                "Cross-shard transfers (handoff/release/inject) applied, per shard"
            }
            MetricId::ShardArenaMsgsHighwater => "Peak live-message occupancy, per shard",
            MetricId::ShardBarrierWaitNs => "Time spent waiting at round barriers, ns per shard",
            MetricId::ShardSpinYieldTransitions => {
                "Barrier waits that exhausted the spin budget and yielded"
            }
            MetricId::HarnessReplications => "Replications executed by the harness",
            MetricId::HarnessRepWallNs => "Per-replication wall clock, nanoseconds",
            MetricId::HarnessQueueDepthMax => "Peak reorder-buffer depth in the index-order fold",
            MetricId::HarnessWorkers => "Worker threads the harness ran with",
            MetricId::EventsDropped => "NDJSON events dropped by the per-replication byte budget",
            MetricId::TraceDropped => "Engine trace records dropped by the ring-buffer bound",
            MetricId::ServeRequests => "Requests accepted by the serve layer",
            MetricId::ServeCacheHits => "Serve requests answered from the completed-result cache",
            MetricId::ServeCoalesced => "Serve requests that joined an identical in-flight run",
            MetricId::ServeRunsExecuted => "Engine runs the serve layer executed (cold misses)",
        }
    }
}

/// One series: a metric id plus an optional shard label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeriesKey {
    /// The metric.
    pub id: MetricId,
    /// Shard label, for per-shard series.
    pub shard: Option<u32>,
}

impl SeriesKey {
    /// An unlabelled series.
    pub fn plain(id: MetricId) -> Self {
        SeriesKey { id, shard: None }
    }

    /// A per-shard series.
    pub fn shard(id: MetricId, shard: u32) -> Self {
        SeriesKey {
            id,
            shard: Some(shard),
        }
    }

    /// Render as `name` or `name{shard="N"}`.
    pub fn render(&self) -> String {
        match self.shard {
            None => self.id.name().to_string(),
            Some(s) => format!("{}{{shard=\"{s}\"}}", self.id.name()),
        }
    }
}

/// Number of log₂ histogram buckets: bucket `i` counts values whose bit
/// length is `i` (bucket 0 is exactly zero).
pub const LOG2_BUCKETS: usize = 65;

/// A log₂ histogram over `u64` values with exact integer state, so merging
/// is commutative and associative.
#[derive(Debug, Clone)]
pub struct Log2Hist {
    buckets: [u64; LOG2_BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Log2Hist {
    fn default() -> Self {
        Log2Hist {
            buckets: [0; LOG2_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Log2Hist {
    /// Reconstruct a histogram from mirrored raw state — the engine layer
    /// exports plain bucket arrays (it must not depend on this crate), and
    /// the scrape converts them losslessly.
    pub fn from_raw(
        buckets: [u64; LOG2_BUCKETS],
        count: u64,
        sum: u128,
        min: u64,
        max: u64,
    ) -> Self {
        Log2Hist {
            buckets,
            count,
            sum,
            min,
            max,
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let idx = (64 - v.leading_zeros()) as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded value (`u64::MAX` when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Bucket counts (bucket `i` = values of bit length `i`).
    pub fn buckets(&self) -> &[u64; LOG2_BUCKETS] {
        &self.buckets
    }

    /// Absorb another histogram (exact; order-independent).
    pub fn merge(&mut self, other: &Log2Hist) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The registry: a deterministic map from [`SeriesKey`] to counter, gauge
/// or histogram state. One per replication; merged in index order by the
/// harness fold.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<SeriesKey, u64>,
    gauges: BTreeMap<SeriesKey, u64>,
    hists: BTreeMap<SeriesKey, Log2Hist>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether no series has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Add `by` to a counter series.
    pub fn inc_by(&mut self, key: SeriesKey, by: u64) {
        debug_assert_eq!(key.id.kind(), MetricKind::Counter, "{}", key.id.name());
        *self.counters.entry(key).or_insert(0) += by;
    }

    /// Raise a gauge series to at least `v` (high-water semantics).
    pub fn gauge_max(&mut self, key: SeriesKey, v: u64) {
        debug_assert_eq!(key.id.kind(), MetricKind::Gauge, "{}", key.id.name());
        let g = self.gauges.entry(key).or_insert(0);
        *g = (*g).max(v);
    }

    /// Record one value into a histogram series.
    pub fn observe(&mut self, key: SeriesKey, v: u64) {
        debug_assert_eq!(key.id.kind(), MetricKind::Histogram, "{}", key.id.name());
        self.hists.entry(key).or_default().record(v);
    }

    /// Merge a whole histogram into a series (exact, order-independent).
    pub fn observe_hist(&mut self, key: SeriesKey, h: &Log2Hist) {
        debug_assert_eq!(key.id.kind(), MetricKind::Histogram, "{}", key.id.name());
        self.hists.entry(key).or_default().merge(h);
    }

    /// A counter's value (0 when never incremented), summed over all
    /// labelled series of the id when `key.shard` is `None` and the plain
    /// series is absent.
    pub fn counter(&self, key: SeriesKey) -> u64 {
        self.counters.get(&key).copied().unwrap_or(0)
    }

    /// A gauge's value (0 when never set).
    pub fn gauge(&self, key: SeriesKey) -> u64 {
        self.gauges.get(&key).copied().unwrap_or(0)
    }

    /// A histogram series, if recorded.
    pub fn hist(&self, key: SeriesKey) -> Option<&Log2Hist> {
        self.hists.get(&key)
    }

    /// Sum of a counter id over every series (all shard labels + plain).
    pub fn counter_total(&self, id: MetricId) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.id == id)
            .map(|(_, v)| v)
            .sum()
    }

    /// Max of a gauge id over every series.
    pub fn gauge_overall(&self, id: MetricId) -> u64 {
        self.gauges
            .iter()
            .filter(|(k, _)| k.id == id)
            .map(|(_, &v)| v)
            .max()
            .unwrap_or(0)
    }

    /// Absorb another registry. Counters add, gauges max, histograms add
    /// element-wise — all commutative and associative, so the result is
    /// independent of merge order and grouping.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let g = self.gauges.entry(*k).or_insert(0);
            *g = (*g).max(*v);
        }
        for (k, h) in &other.hists {
            self.hists.entry(*k).or_default().merge(h);
        }
    }

    /// Counter series in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&SeriesKey, &u64)> {
        self.counters.iter()
    }

    /// Gauge series in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&SeriesKey, &u64)> {
        self.gauges.iter()
    }

    /// Histogram series in key order.
    pub fn hists(&self) -> impl Iterator<Item = (&SeriesKey, &Log2Hist)> {
        self.hists.iter()
    }

    /// Series of one id, in key order, as `(key, scalar)` pairs — counters
    /// and gauges verbatim; histograms contribute `count`/`sum`/`min`/`max`
    /// scalars with a suffix on the rendered key.
    fn scalar_series(&self, id: MetricId) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        match id.kind() {
            MetricKind::Counter => {
                for (k, &v) in self.counters.iter().filter(|(k, _)| k.id == id) {
                    out.push((k.render(), v));
                }
            }
            MetricKind::Gauge => {
                for (k, &v) in self.gauges.iter().filter(|(k, _)| k.id == id) {
                    out.push((k.render(), v));
                }
            }
            MetricKind::Histogram => {
                for (k, h) in self.hists.iter().filter(|(k, _)| k.id == id) {
                    let name = id.name();
                    let lbl = prom_labels(k);
                    out.push((format!("{name}_count{lbl}"), h.count()));
                    out.push((format!("{name}_sum{lbl}"), h.sum() as u64));
                    let min = if h.count() == 0 { 0 } else { h.min() };
                    out.push((format!("{name}_min{lbl}"), min));
                    out.push((format!("{name}_max{lbl}"), h.max()));
                }
            }
        }
        out
    }

    /// All series of non-deterministic ids as rendered `(key, value)`
    /// pairs, catalog order then key order — the content of a profile
    /// report's single-line `nd_series` object.
    pub fn nd_scalar_series(&self) -> Vec<(String, u64)> {
        MetricId::ALL
            .iter()
            .filter(|id| !id.deterministic())
            .flat_map(|&id| self.scalar_series(id))
            .collect()
    }

    /// Render the Prometheus text exposition: `# HELP` / `# TYPE` per
    /// catalog id, then one sample line per series (histograms expose
    /// cumulative `_bucket{le=..}` plus `_sum` / `_count`).
    pub fn to_prom(&self) -> String {
        let mut out = String::new();
        for &id in MetricId::ALL.iter() {
            let name = format!("wormcast_{}", id.name());
            out.push_str(&format!("# HELP {name} {}\n", id.help()));
            out.push_str(&format!("# TYPE {name} {}\n", id.kind().name()));
            match id.kind() {
                MetricKind::Counter => {
                    let mut any = false;
                    for (k, v) in self.counters.iter().filter(|(k, _)| k.id == id) {
                        out.push_str(&format!("{name}{} {v}\n", prom_labels(k)));
                        any = true;
                    }
                    if !any {
                        out.push_str(&format!("{name} 0\n"));
                    }
                }
                MetricKind::Gauge => {
                    let mut any = false;
                    for (k, v) in self.gauges.iter().filter(|(k, _)| k.id == id) {
                        out.push_str(&format!("{name}{} {v}\n", prom_labels(k)));
                        any = true;
                    }
                    if !any {
                        out.push_str(&format!("{name} 0\n"));
                    }
                }
                MetricKind::Histogram => {
                    let mut any = false;
                    for (k, h) in self.hists.iter().filter(|(k, _)| k.id == id) {
                        any = true;
                        let shard = k.shard.map(|s| format!("shard=\"{s}\","));
                        let shard = shard.as_deref().unwrap_or("");
                        let mut cum = 0u64;
                        let top = h.buckets().iter().rposition(|&c| c > 0).unwrap_or(0);
                        for (i, &c) in h.buckets().iter().take(top + 1).enumerate() {
                            cum += c;
                            let le = if i >= 64 {
                                u64::MAX as u128
                            } else {
                                (1u128 << i) - 1
                            };
                            out.push_str(&format!("{name}_bucket{{{shard}le=\"{le}\"}} {cum}\n"));
                        }
                        out.push_str(&format!(
                            "{name}_bucket{{{shard}le=\"+Inf\"}} {}\n",
                            h.count()
                        ));
                        let labels = k.shard.map(|s| format!("{{shard=\"{s}\"}}"));
                        let labels = labels.as_deref().unwrap_or("");
                        out.push_str(&format!("{name}_sum{labels} {}\n", h.sum()));
                        out.push_str(&format!("{name}_count{labels} {}\n", h.count()));
                    }
                    if !any {
                        out.push_str(&format!("{name}_sum 0\n{name}_count 0\n"));
                    }
                }
            }
        }
        out
    }
}

fn prom_labels(k: &SeriesKey) -> String {
    match k.shard {
        None => String::new(),
        Some(s) => format!("{{shard=\"{s}\"}}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        r.inc_by(SeriesKey::plain(MetricId::EngineWheelBucketScans), 10);
        r.gauge_max(SeriesKey::plain(MetricId::EngineArenaMsgsHighwater), 7);
        r.inc_by(SeriesKey::shard(MetricId::ShardBarrierWaitNs, 0), 100);
        r.inc_by(SeriesKey::shard(MetricId::ShardBarrierWaitNs, 1), 50);
        r.observe(SeriesKey::shard(MetricId::ShardWindowWidthPs, 0), 1024);
        r.observe(SeriesKey::shard(MetricId::ShardWindowWidthPs, 0), 3);
        r
    }

    #[test]
    fn catalog_names_are_unique_and_stable() {
        let mut names: Vec<&str> = MetricId::ALL.iter().map(|id| id.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate metric names");
        assert_eq!(MetricId::ALL.len(), 22);
    }

    #[test]
    fn counters_add_gauges_max_hists_add() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(
            a.counter(SeriesKey::plain(MetricId::EngineWheelBucketScans)),
            20
        );
        assert_eq!(
            a.gauge(SeriesKey::plain(MetricId::EngineArenaMsgsHighwater)),
            7
        );
        assert_eq!(
            a.counter(SeriesKey::shard(MetricId::ShardBarrierWaitNs, 1)),
            100
        );
        let h = a
            .hist(SeriesKey::shard(MetricId::ShardWindowWidthPs, 0))
            .unwrap();
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 2 * (1024 + 3));
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 1024);
    }

    #[test]
    fn merge_is_order_independent() {
        // The satellite contract: any merge order and grouping produces the
        // same registry (counters commute, max commutes, bucket adds
        // commute).
        let mut a = MetricsRegistry::new();
        a.inc_by(SeriesKey::plain(MetricId::EngineReroutes), 1);
        a.gauge_max(SeriesKey::plain(MetricId::HarnessQueueDepthMax), 3);
        a.observe(SeriesKey::plain(MetricId::HarnessRepWallNs), 500);
        let mut b = MetricsRegistry::new();
        b.inc_by(SeriesKey::plain(MetricId::EngineReroutes), 5);
        b.gauge_max(SeriesKey::plain(MetricId::HarnessQueueDepthMax), 2);
        b.observe(SeriesKey::plain(MetricId::HarnessRepWallNs), 9_000);
        let mut c = MetricsRegistry::new();
        c.inc_by(SeriesKey::shard(MetricId::ShardCrossingsApplied, 2), 7);
        c.observe(SeriesKey::plain(MetricId::HarnessRepWallNs), 1);

        let mut abc = a.clone();
        abc.merge(&b);
        abc.merge(&c);
        let mut cba = c.clone();
        let mut ba = b.clone();
        ba.merge(&a);
        cba.merge(&ba);

        assert_eq!(abc.counters, cba.counters);
        assert_eq!(abc.gauges, cba.gauges);
        assert_eq!(
            abc.hists.keys().collect::<Vec<_>>(),
            cba.hists.keys().collect::<Vec<_>>()
        );
        for (k, h) in &abc.hists {
            let other = &cba.hists[k];
            assert_eq!(h.buckets(), other.buckets());
            assert_eq!(h.count(), other.count());
            assert_eq!(h.sum(), other.sum());
            assert_eq!(h.min(), other.min());
            assert_eq!(h.max(), other.max());
        }
        assert_eq!(abc.to_prom(), cba.to_prom());
    }

    #[test]
    fn log2_hist_buckets_by_bit_length() {
        let mut h = Log2Hist::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.buckets()[0], 1, "zero bucket");
        assert_eq!(h.buckets()[1], 1, "bit length 1");
        assert_eq!(h.buckets()[2], 2, "bit length 2");
        assert_eq!(h.buckets()[11], 1, "1024 has bit length 11");
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1024);
    }

    #[test]
    fn prom_exposition_covers_catalog_and_labels() {
        let r = sample();
        let prom = r.to_prom();
        for id in MetricId::ALL {
            assert!(
                prom.contains(&format!("# TYPE wormcast_{} ", id.name())),
                "missing TYPE for {}",
                id.name()
            );
        }
        assert!(prom.contains("wormcast_shard_barrier_wait_ns{shard=\"0\"} 100"));
        assert!(prom.contains("wormcast_shard_barrier_wait_ns{shard=\"1\"} 50"));
        assert!(prom.contains("wormcast_engine_arena_msgs_highwater 7"));
        assert!(prom.contains("wormcast_shard_window_width_ps_bucket{shard=\"0\",le=\"+Inf\"} 2"));
        assert!(prom.contains("wormcast_shard_window_width_ps_sum{shard=\"0\"} 1027"));
        // Ids with no data still expose a zero sample.
        assert!(prom.contains("wormcast_trace_dropped 0"));
    }

    #[test]
    fn nd_series_lists_only_nondeterministic_ids() {
        let r = sample();
        let nd = r.nd_scalar_series();
        assert!(nd
            .iter()
            .any(|(k, v)| k == "shard_barrier_wait_ns{shard=\"0\"}" && *v == 100));
        assert!(
            nd.iter()
                .any(|(k, v)| k == "engine_wheel_bucket_scans" && *v == 10),
            "wheel counters follow executor geometry, so they are nd: {nd:?}"
        );
        assert!(
            !nd.iter().any(|(k, _)| k.starts_with("engine_arena")),
            "arena occupancy is physics-determined, so it stays deterministic: {nd:?}"
        );
        assert!(nd
            .iter()
            .any(|(k, v)| k == "shard_window_width_ps_count{shard=\"0\"}" && *v == 2));
    }
}
