//! Simulation time.
//!
//! All kernel time is kept in **integer picoseconds** so that event ordering is
//! exact and runs are bit-reproducible across platforms. The paper's hardware
//! constants translate exactly: the per-flit channel cycle β = 0.003 µs is
//! 3 000 ps and the start-up latencies Ts = 0.15 µs / 1.5 µs are 150 000 ps and
//! 1 500 000 ps. Floating-point conversions are provided only at the reporting
//! boundary (µs / ms values printed in tables and figures).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds in one microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds in one millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;

/// An absolute instant on the simulation clock, in picoseconds since t = 0.
///
/// `SimTime` is totally ordered and wraps a `u64`, giving exact arithmetic for
/// around 213 days of simulated time — vastly more than any experiment here
/// (the longest runs cover a few simulated seconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span between two [`SimTime`] instants, in picoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from a count of picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Construct from microseconds (exact for the paper's constants).
    #[inline]
    pub fn from_us(us: f64) -> Self {
        SimTime((us * PS_PER_US as f64).round() as u64)
    }

    /// Construct from milliseconds.
    #[inline]
    pub fn from_ms(ms: f64) -> Self {
        SimTime((ms * PS_PER_MS as f64).round() as u64)
    }

    /// This instant expressed in picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This instant expressed in microseconds.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// This instant expressed in milliseconds.
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier > self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            earlier <= self,
            "SimTime::since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating addition of a duration (sticks at [`SimTime::MAX`]).
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from a count of picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Construct from microseconds.
    #[inline]
    pub fn from_us(us: f64) -> Self {
        SimDuration((us * PS_PER_US as f64).round() as u64)
    }

    /// Construct from milliseconds.
    #[inline]
    pub fn from_ms(ms: f64) -> Self {
        SimDuration((ms * PS_PER_MS as f64).round() as u64)
    }

    /// This span expressed in picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This span expressed in microseconds.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// This span expressed in milliseconds.
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// Integer multiple of this span (e.g. L flits × β).
    #[inline]
    pub const fn times(self, n: u64) -> SimDuration {
        SimDuration(self.0 * n)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}us", self.as_us())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}us", self.as_us())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_are_exact() {
        assert_eq!(SimDuration::from_us(0.003).as_ps(), 3_000);
        assert_eq!(SimDuration::from_us(0.15).as_ps(), 150_000);
        assert_eq!(SimDuration::from_us(1.5).as_ps(), 1_500_000);
    }

    #[test]
    fn add_sub_roundtrip() {
        let t = SimTime::from_ps(10_000);
        let d = SimDuration::from_ps(2_500);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn unit_conversions() {
        let d = SimDuration::from_ms(1.0);
        assert_eq!(d.as_ps(), PS_PER_MS);
        assert!((d.as_us() - 1000.0).abs() < 1e-12);
        assert!((d.as_ms() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn flit_arithmetic() {
        // 100 flits at beta = 3ns each => 300ns = 0.3us.
        let beta = SimDuration::from_us(0.003);
        assert_eq!(beta.times(100).as_ps(), 300_000);
        assert_eq!((beta * 100).as_ps(), 300_000);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_ps(1);
        let b = SimTime::from_ps(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert!(SimTime::ZERO < SimTime::MAX);
    }

    #[test]
    fn saturating_add_sticks_at_max() {
        let t = SimTime::MAX;
        assert_eq!(t.saturating_add(SimDuration::from_ps(10)), SimTime::MAX);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_ps).sum();
        assert_eq!(total.as_ps(), 10);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn since_panics_when_reversed() {
        let a = SimTime::from_ps(5);
        let b = SimTime::from_ps(10);
        let _ = a.since(b);
    }
}
