//! Conservative round planning and thread coordination for sharded
//! simulation.
//!
//! A sharded simulation advances in *rounds*. Before each round every shard
//! publishes two numbers read off its own calendar wheel: the time of its
//! earliest pending event, and the time of its earliest *gate* event — an
//! event whose side effects can reach other shards with zero lookahead (a
//! wormhole path release, a watchdog kill) or that must be surfaced to a
//! single-threaded driver (a delivery). The [`ShardedScheduler`] folds these
//! into a [`Round`]: a global floor `t0` and an exclusive `horizon`, and
//! every shard then processes exactly the events with `t0 <= time < horizon`
//! before meeting at a barrier to exchange boundary events.
//!
//! The horizon is safe because every *cross-shard* event other than a gate
//! has at least one hop of lookahead: a header crossing a boundary channel
//! is emitted when the channel is granted but takes effect one hop time
//! later, so events emitted inside a round land at or beyond the horizon and
//! are applied in the next round. Gates get no such grace, so the horizon
//! never passes the earliest pending gate; when the gate sits exactly at
//! `t0` the round degenerates to a single timestamp, the gate's same-time
//! effects are exchanged at the barrier, and the next round re-opens at the
//! same `t0` to apply them.
//!
//! [`SpinBarrier`] is the meeting point: a sense-reversing busy-wait
//! barrier. Rounds are short (often a single timestamp), so parking threads
//! in the kernel on every round would dominate the run time; spinning costs
//! a few hundred nanoseconds per crossing instead.

use crate::time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Plans conservative execution rounds from per-shard wheel snapshots.
///
/// Hold one per simulation; any thread may own it as long as publishes and
/// plans are separated by barriers (the engine has the coordinator thread do
/// both between round barriers).
#[derive(Debug)]
pub struct ShardedScheduler {
    /// Base lookahead: the minimum sim-time distance between the emission
    /// and the effect of a non-gate cross-shard event (one hop, or one flit
    /// when a driver can inject at delivery times).
    lookahead: u64,
    /// Per-shard earliest pending event time (ps); `u64::MAX` when idle.
    mins: Vec<u64>,
    /// Per-shard earliest pending gate-event time (ps); `u64::MAX` if none.
    gates: Vec<u64>,
}

/// One execution round: every shard processes events with
/// `time < horizon`, with `t0` the global minimum pending time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Round {
    /// Global minimum pending event time across shards.
    pub t0: SimTime,
    /// Exclusive upper bound on event times processed this round.
    pub horizon: SimTime,
}

impl ShardedScheduler {
    /// A scheduler for `shards` shards with the given base lookahead.
    ///
    /// A zero lookahead is clamped to one picosecond: the degenerate
    /// timestamp-lockstep schedule, which is always safe.
    pub fn new(shards: usize, lookahead: SimDuration) -> Self {
        ShardedScheduler {
            lookahead: lookahead.0.max(1),
            mins: vec![u64::MAX; shards],
            gates: vec![u64::MAX; shards],
        }
    }

    /// Record shard `s`'s wheel snapshot for the next plan: its earliest
    /// pending event and earliest pending gate event, `None` when empty.
    pub fn publish(&mut self, s: usize, min_pending: Option<SimTime>, min_gate: Option<SimTime>) {
        self.mins[s] = min_pending.map_or(u64::MAX, |t| t.0);
        self.gates[s] = min_gate.map_or(u64::MAX, |t| t.0);
    }

    /// Plan the next round, or `None` when every shard is idle.
    pub fn plan(&self) -> Option<Round> {
        let t0 = *self.mins.iter().min().expect("at least one shard");
        if t0 == u64::MAX {
            return None;
        }
        let gate = *self.gates.iter().min().expect("at least one shard");
        let horizon = if gate <= t0 {
            // The earliest gate is due now: single-timestamp round so its
            // same-time effects are exchanged before anyone moves past t0.
            t0 + 1
        } else {
            // Full lookahead window, cut short of the earliest gate.
            gate.min(t0.saturating_add(self.lookahead))
        };
        Some(Round {
            t0: SimTime(t0),
            horizon: SimTime(horizon),
        })
    }
}

/// A sense-reversing spin barrier for a fixed set of participants.
///
/// Each participant keeps a local sense flag (start at `false`) and passes
/// it to every [`SpinBarrier::wait`]; the barrier flips a shared sense when
/// the last participant arrives, releasing the spinners. Waiters spin
/// briefly and then yield to the OS scheduler: with more participants than
/// cores (or on a single-core host) a pure spin burns whole timeslices per
/// crossing while the thread that would release the barrier waits to run.
#[derive(Debug)]
pub struct SpinBarrier {
    arrived: AtomicUsize,
    sense: AtomicBool,
    total: usize,
}

impl SpinBarrier {
    /// A barrier released only when `total` participants arrive.
    pub fn new(total: usize) -> Self {
        assert!(total > 0, "barrier needs at least one participant");
        SpinBarrier {
            arrived: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            total,
        }
    }

    /// Block (spinning) until all participants have called `wait` with the
    /// same generation's sense. `sense` must start `false` and be reused
    /// across calls by the same participant.
    ///
    /// Returns `true` when the wait outlasted the spin phase and yielded to
    /// the OS scheduler at least once (an observability signal: frequent
    /// yields mean the barrier is oversubscribed or badly imbalanced).
    pub fn wait(&self, sense: &mut bool) -> bool {
        let next = !*sense;
        *sense = next;
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.arrived.store(0, Ordering::Relaxed);
            self.sense.store(next, Ordering::Release);
            false
        } else {
            let mut spins = 0u32;
            let mut yielded = false;
            while self.sense.load(Ordering::Acquire) != next {
                if spins < 128 {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    yielded = true;
                    std::thread::yield_now();
                }
            }
            yielded
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn t(ps: u64) -> Option<SimTime> {
        Some(SimTime(ps))
    }

    #[test]
    fn plan_is_none_when_all_idle() {
        let s = ShardedScheduler::new(3, SimDuration(100));
        assert_eq!(s.plan(), None);
    }

    #[test]
    fn plan_uses_full_lookahead_without_gates() {
        let mut s = ShardedScheduler::new(2, SimDuration(100));
        s.publish(0, t(1_000), None);
        s.publish(1, t(1_050), None);
        let r = s.plan().unwrap();
        assert_eq!(r.t0, SimTime(1_000));
        assert_eq!(r.horizon, SimTime(1_100));
    }

    #[test]
    fn plan_caps_horizon_at_future_gate() {
        let mut s = ShardedScheduler::new(2, SimDuration(100));
        s.publish(0, t(1_000), t(1_040));
        s.publish(1, t(1_020), None);
        assert_eq!(s.plan().unwrap().horizon, SimTime(1_040));
    }

    #[test]
    fn plan_degenerates_to_lockstep_on_due_gate() {
        let mut s = ShardedScheduler::new(2, SimDuration(100));
        s.publish(0, t(1_000), t(1_000));
        s.publish(1, t(1_500), None);
        let r = s.plan().unwrap();
        assert_eq!(r.t0, SimTime(1_000));
        assert_eq!(r.horizon, SimTime(1_001));
    }

    #[test]
    fn plan_ignores_idle_shards() {
        let mut s = ShardedScheduler::new(3, SimDuration(50));
        s.publish(0, None, None);
        s.publish(1, t(2_000), None);
        s.publish(2, None, None);
        let r = s.plan().unwrap();
        assert_eq!(r.t0, SimTime(2_000));
        assert_eq!(r.horizon, SimTime(2_050));
    }

    #[test]
    fn zero_lookahead_clamps_to_lockstep() {
        let mut s = ShardedScheduler::new(1, SimDuration(0));
        s.publish(0, t(7), None);
        assert_eq!(s.plan().unwrap().horizon, SimTime(8));
    }

    #[test]
    fn spin_barrier_synchronizes_phases() {
        const THREADS: usize = 4;
        const ROUNDS: usize = 100;
        let barrier = SpinBarrier::new(THREADS);
        let counter = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    let mut sense = false;
                    for round in 0..ROUNDS {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait(&mut sense);
                        // Everyone has contributed to this round's total.
                        let seen = counter.load(Ordering::Relaxed);
                        assert!(seen >= ((round + 1) * THREADS) as u64);
                        barrier.wait(&mut sense);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), (THREADS * ROUNDS) as u64);
    }
}
