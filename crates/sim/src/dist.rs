//! Sampling distributions used by the workloads.
//!
//! The paper's traffic model (§3.3) uses exponentially distributed message
//! inter-arrival times; message lengths are swept over fixed values (32–2048
//! flits); sources and destinations are chosen uniformly. We provide those
//! plus a couple of length distributions used by the ablation benches.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// A distribution over time spans.
pub trait DurationDist {
    /// Draw one sample.
    fn sample(&self, rng: &mut SimRng) -> SimDuration;
    /// The distribution mean, for analytic cross-checks.
    fn mean(&self) -> SimDuration;
}

/// Exponential inter-arrival times with the given mean (Poisson arrivals).
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    mean_ps: f64,
}

impl Exponential {
    /// Exponential with mean `mean`.
    ///
    /// # Panics
    /// Panics if the mean is zero — a zero-mean exponential is degenerate and
    /// would make a traffic generator inject infinitely fast.
    pub fn with_mean(mean: SimDuration) -> Self {
        assert!(mean.as_ps() > 0, "exponential mean must be positive");
        Exponential {
            mean_ps: mean.as_ps() as f64,
        }
    }

    /// Exponential parameterised by rate in messages per millisecond — the
    /// x-axis unit of the paper's Figs. 3 and 4.
    pub fn with_rate_per_ms(rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        Exponential {
            mean_ps: crate::time::PS_PER_MS as f64 / rate,
        }
    }
}

impl DurationDist for Exponential {
    fn sample(&self, rng: &mut SimRng) -> SimDuration {
        // Inverse transform; 1-u avoids ln(0).
        let u = 1.0 - rng.unit();
        let ps = -self.mean_ps * u.ln();
        SimDuration::from_ps(ps.round() as u64)
    }

    fn mean(&self) -> SimDuration {
        SimDuration::from_ps(self.mean_ps.round() as u64)
    }
}

/// A fixed, deterministic span (used for closed-form latency checks).
#[derive(Debug, Clone, Copy)]
pub struct Fixed(pub SimDuration);

impl DurationDist for Fixed {
    fn sample(&self, _rng: &mut SimRng) -> SimDuration {
        self.0
    }
    fn mean(&self) -> SimDuration {
        self.0
    }
}

/// A distribution over message lengths in flits.
pub trait LengthDist {
    /// Draw one length.
    fn sample(&self, rng: &mut SimRng) -> u64;
}

/// Every message has the same length — the setting in all the paper's figures.
#[derive(Debug, Clone, Copy)]
pub struct FixedLength(pub u64);

impl LengthDist for FixedLength {
    fn sample(&self, _rng: &mut SimRng) -> u64 {
        self.0
    }
}

/// Uniform over a closed set of lengths (the paper's 32–2048 flit sweep as a
/// mixed workload, used by ablation benches).
#[derive(Debug, Clone)]
pub struct ChoiceLength(pub Vec<u64>);

impl LengthDist for ChoiceLength {
    fn sample(&self, rng: &mut SimRng) -> u64 {
        assert!(!self.0.is_empty(), "ChoiceLength: empty choice set");
        self.0[rng.index(self.0.len())]
    }
}

/// Bimodal: short control messages with probability `p_short`, long data
/// messages otherwise. Used in ablation benches only.
#[derive(Debug, Clone, Copy)]
pub struct BimodalLength {
    /// Length of the short mode, flits.
    pub short: u64,
    /// Length of the long mode, flits.
    pub long: u64,
    /// Probability of drawing the short mode.
    pub p_short: f64,
}

impl LengthDist for BimodalLength {
    fn sample(&self, rng: &mut SimRng) -> u64 {
        if rng.chance(self.p_short) {
            self.short
        } else {
            self.long
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SimRng::new(11);
        let d = Exponential::with_mean(SimDuration::from_us(10.0));
        let n = 20_000;
        let total: u64 = (0..n).map(|_| d.sample(&mut rng).as_ps()).sum();
        let mean = total as f64 / n as f64;
        let expect = 10.0 * 1e6;
        assert!(
            (mean - expect).abs() / expect < 0.03,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn exponential_rate_per_ms() {
        // rate 0.05 msg/ms => mean 20 ms.
        let d = Exponential::with_rate_per_ms(0.05);
        assert_eq!(d.mean().as_ps(), 20 * crate::time::PS_PER_MS);
    }

    #[test]
    fn exponential_is_nonnegative_and_varies() {
        let mut rng = SimRng::new(2);
        let d = Exponential::with_mean(SimDuration::from_us(1.0));
        let samples: Vec<u64> = (0..100).map(|_| d.sample(&mut rng).as_ps()).collect();
        assert!(samples.iter().any(|&s| s != samples[0]));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_mean_rejected() {
        let _ = Exponential::with_mean(SimDuration::ZERO);
    }

    #[test]
    fn fixed_is_fixed() {
        let mut rng = SimRng::new(0);
        let d = Fixed(SimDuration::from_ps(123));
        assert_eq!(d.sample(&mut rng).as_ps(), 123);
        assert_eq!(d.mean().as_ps(), 123);
    }

    #[test]
    fn fixed_length() {
        let mut rng = SimRng::new(0);
        assert_eq!(FixedLength(64).sample(&mut rng), 64);
    }

    #[test]
    fn choice_length_only_draws_members() {
        let mut rng = SimRng::new(9);
        let d = ChoiceLength(vec![32, 64, 2048]);
        for _ in 0..200 {
            let l = d.sample(&mut rng);
            assert!([32, 64, 2048].contains(&l));
        }
    }

    #[test]
    fn bimodal_respects_probability() {
        let mut rng = SimRng::new(4);
        let d = BimodalLength {
            short: 8,
            long: 512,
            p_short: 0.9,
        };
        let shorts = (0..5000).filter(|_| d.sample(&mut rng) == 8).count();
        let frac = shorts as f64 / 5000.0;
        assert!((frac - 0.9).abs() < 0.03, "short fraction {frac}");
    }
}
