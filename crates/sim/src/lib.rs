//! # wormcast-sim — discrete-event simulation kernel
//!
//! The execution substrate for the wormcast network simulator. The paper's
//! authors built their simulator on MultiSim/CSIM-18, a C process-oriented
//! simulation package; this crate is the from-scratch Rust equivalent:
//!
//! * [`time`] — integer-picosecond simulated time ([`SimTime`], [`SimDuration`]);
//! * [`queue`] — the future-event list ([`EventQueue`]) with deterministic
//!   FIFO tie-breaking, so runs are bit-reproducible;
//! * [`wheel`] — the calendar wheel ([`CalendarWheel`]): the same
//!   deterministic ordering at O(1) amortized cost, used by the network
//!   engine's hot path (no cancellation);
//! * [`active_set`] — bitmap index sets ([`ActiveSet`]) for dense id
//!   worklists;
//! * [`rng`] — seeded, labelled random substreams ([`SimRng`]);
//! * [`dist`] — the sampling distributions the workloads need;
//! * [`schedule`] — dynamic scenario schedules ([`Schedule`]): load ramps,
//!   link-bandwidth modulation, hotspot drift and trace replay.
//!
//! Engines (e.g. `wormcast-network`) own an [`EventQueue`] over their own event
//! enum and drive the classic loop:
//!
//! ```
//! use wormcast_sim::{EventQueue, SimTime, SimDuration};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping(u32) }
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_us(1.0), Ev::Ping(0));
//! while let Some((now, Ev::Ping(k))) = q.pop() {
//!     if k < 3 {
//!         q.schedule(now + SimDuration::from_us(1.0), Ev::Ping(k + 1));
//!     }
//! }
//! assert_eq!(q.now(), SimTime::from_us(4.0));
//! ```

#![warn(missing_docs)]

pub mod active_set;
pub mod dist;
pub mod queue;
pub mod rng;
pub mod schedule;
pub mod sharded;
pub mod time;
pub mod wheel;

pub use active_set::ActiveSet;
pub use dist::{
    BimodalLength, ChoiceLength, DurationDist, Exponential, Fixed, FixedLength, LengthDist,
};
pub use queue::{EventId, EventQueue};
pub use rng::SimRng;
pub use schedule::{
    HotspotDrift, LinkModulation, LoadRamp, RampPoint, ReplayEntry, Schedule, SpeedTransition,
    TraceReplay, MAX_PHASE_MARKS,
};
pub use sharded::{Round, ShardedScheduler, SpinBarrier};
pub use time::{SimDuration, SimTime, PS_PER_MS, PS_PER_US};
pub use wheel::CalendarWheel;
