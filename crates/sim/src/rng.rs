//! Reproducible random-number streams.
//!
//! Every stochastic element of an experiment (source selection, inter-arrival
//! times, message mix, lengths) draws from a named substream derived from a
//! single experiment seed, so (a) runs are bit-reproducible given the seed and
//! (b) changing how often one component draws does not perturb the others —
//! the standard variance-reduction discipline for simulation studies.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A seedable random stream (ChaCha8: fast, portable, stable across releases).
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// A root stream from an experiment seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// A replication stream: the `rep`-th independent stream derived from a
    /// master experiment seed.
    ///
    /// The master seed keys the cipher and the replication index selects the
    /// ChaCha stream number, so every replication draws from the same keyed
    /// cipher on non-overlapping streams. The derivation is a pure function
    /// of `(master_seed, rep)` — results are bit-identical no matter which
    /// worker thread runs the replication or in what order.
    pub fn for_replication(master_seed: u64, rep: u64) -> Self {
        let mut inner = ChaCha8Rng::seed_from_u64(master_seed);
        // Splay the replication index across the 64-bit stream space so
        // labelled substreams (an XOR of the label hash, below) of different
        // replications cannot collide for small `rep`.
        inner.set_stream(rep.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        SimRng { inner }
    }

    /// Derive an independent, reproducible substream for component `label`.
    ///
    /// The derivation XORs a hash of the label into the stream number of the
    /// ChaCha cipher, so substreams never overlap regardless of how much
    /// each is consumed, and substreams of distinct replication streams
    /// ([`SimRng::for_replication`]) stay distinct.
    pub fn substream(&self, label: &str) -> SimRng {
        let mut inner = self.inner.clone();
        inner.set_stream(inner.get_stream() ^ fnv1a(label.as_bytes()));
        inner.set_word_pos(0);
        SimRng { inner }
    }

    /// The substream for spatial shard `shard` of a sharded simulation.
    ///
    /// A thin wrapper over [`SimRng::substream`] with a canonical label, so
    /// every component that needs per-shard randomness derives the *same*
    /// stream for the same shard — and a different one from any hand-written
    /// label — regardless of which worker thread drives the shard.
    pub fn for_shard(&self, shard: usize) -> SimRng {
        self.substream(&format!("shard/{shard}"))
    }

    /// A uniformly distributed index in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: empty range");
        self.inner.gen_range(0..n)
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.unit() < p
    }

    /// A uniformly distributed u64.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Expose the raw `Rng` for distribution sampling.
    pub fn raw(&mut self) -> &mut impl Rng {
        &mut self.inner
    }
}

/// 64-bit FNV-1a — tiny, stable hash for deriving stream ids from labels.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(8);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge, {same}/64 equal");
    }

    #[test]
    fn substreams_are_independent_of_consumption() {
        let root = SimRng::new(42);
        let mut s1 = root.substream("arrivals");
        let first = s1.next_u64();

        // Consuming the root (or another substream) must not shift "arrivals".
        let mut root2 = SimRng::new(42);
        for _ in 0..10 {
            root2.next_u64();
        }
        let mut s2 = SimRng::new(42).substream("arrivals");
        assert_eq!(first, s2.next_u64());
    }

    #[test]
    fn substreams_differ_by_label() {
        let root = SimRng::new(42);
        let mut a = root.substream("a");
        let mut b = root.substream("b");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn replication_streams_are_order_independent() {
        // Stream 3 is the same whether or not streams 0..2 were ever built
        // or consumed — the property the parallel harness relies on.
        let mut direct = SimRng::for_replication(9, 3);
        let expected: Vec<u64> = (0..16).map(|_| direct.next_u64()).collect();

        for other in [0u64, 1, 2, 7] {
            let mut r = SimRng::for_replication(9, other);
            r.next_u64();
        }
        let mut again = SimRng::for_replication(9, 3);
        let got: Vec<u64> = (0..16).map(|_| again.next_u64()).collect();
        assert_eq!(expected, got);
    }

    #[test]
    fn replication_streams_differ() {
        let mut a = SimRng::for_replication(9, 0);
        let mut b = SimRng::for_replication(9, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "replication streams should diverge, {same}/64");
    }

    #[test]
    fn replication_zero_matches_root_seed() {
        // Replication 0 of a master seed is the root stream of that seed, so
        // single-replication experiments keep their historical draws.
        let mut a = SimRng::for_replication(77, 0);
        let mut b = SimRng::new(77);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn replication_substreams_stay_distinct() {
        let mut a = SimRng::for_replication(5, 1).substream("arrivals");
        let mut b = SimRng::for_replication(5, 2).substream("arrivals");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn index_in_range() {
        let mut r = SimRng::new(1);
        for _ in 0..1000 {
            let i = r.index(17);
            assert!(i < 17);
        }
    }

    #[test]
    fn index_covers_range() {
        let mut r = SimRng::new(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.index(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn unit_in_range() {
        let mut r = SimRng::new(5);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shard_substreams_distinct_and_reproducible() {
        let master = SimRng::for_replication(42, 7);
        let mut a = master.for_shard(0);
        let mut b = master.for_shard(1);
        assert_ne!(a.next_u64(), b.next_u64());
        let mut a2 = SimRng::for_replication(42, 7).for_shard(0);
        let mut a3 = SimRng::for_replication(42, 7).for_shard(0);
        assert_eq!(a2.next_u64(), a3.next_u64());
    }
}
