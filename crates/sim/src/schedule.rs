//! Dynamic scenario schedules: time-varying offered load and link quality.
//!
//! Every workload in the original reproduction was stationary and every
//! fault a step function. A [`Schedule`] describes how a scenario changes
//! *over* simulated time, in four independent (and freely combinable)
//! dimensions:
//!
//! * [`LoadRamp`] — a piecewise-linear intensity profile. Arrival draws are
//!   warped through the inverse CDF of the profile, so a ramp from 0.2× to
//!   2.0× concentrates injections late in the window without changing their
//!   count (the same uniform draws are re-timed, never re-drawn).
//! * [`LinkModulation`] — periodic bandwidth-degradation windows on a
//!   stochastically chosen subset of channels. Materialized per topology
//!   into a time-sorted list of [`SpeedTransition`]s the engine applies as
//!   per-channel header-crossing-time multipliers.
//! * [`HotspotDrift`] — a destination hotspot that moves across the node
//!   space at a fixed cadence; workload generators bias unicast
//!   destinations toward the hotspot's current position.
//! * [`TraceReplay`] — previously recorded NDJSON event traces replayed as
//!   offered traffic (each recorded inject/deliver pair becomes one
//!   unicast).
//!
//! Everything here is **pure data plus deterministic evaluation**: the same
//! schedule, topology and RNG substream always materialize the same
//! transitions and the same warped arrival times, on every platform and at
//! every `--jobs`/`--shards` setting. All stochastic choices draw from a
//! caller-provided [`crate::SimRng`] substream so replications differ only
//! through their seeds.

use crate::rng::SimRng;
use crate::time::SimTime;

/// One point of a piecewise-linear load profile: at `t_us` the offered-load
/// multiplier is `rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RampPoint {
    /// Time of the breakpoint, in microseconds from the start of the run.
    pub t_us: f64,
    /// Offered-load multiplier at that instant (≥ 0; linearly interpolated
    /// between breakpoints, clamped to the end values outside them).
    pub rate: f64,
}

/// A piecewise-linear offered-load profile.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LoadRamp {
    /// Breakpoints in strictly increasing time order.
    pub points: Vec<RampPoint>,
}

impl LoadRamp {
    /// A ramp interpolating linearly from `from` at t=0 to `to` at
    /// `t_us` (and constant afterwards).
    pub fn linear(from: f64, to: f64, t_us: f64) -> Self {
        LoadRamp {
            points: vec![
                RampPoint {
                    t_us: 0.0,
                    rate: from,
                },
                RampPoint { t_us, rate: to },
            ],
        }
    }

    /// Check the profile is well-formed: at least one point, strictly
    /// increasing times, no negative rates, and at least one positive rate.
    pub fn validate(&self) -> Result<(), String> {
        if self.points.is_empty() {
            return Err("load ramp needs at least one point".into());
        }
        for w in self.points.windows(2) {
            if w[1].t_us <= w[0].t_us {
                return Err(format!(
                    "load ramp times must be strictly increasing ({} then {})",
                    w[0].t_us, w[1].t_us
                ));
            }
        }
        if self
            .points
            .iter()
            .any(|p| p.rate < 0.0 || !p.rate.is_finite())
        {
            return Err("load ramp rates must be finite and non-negative".into());
        }
        if self.points.iter().all(|p| p.rate == 0.0) {
            return Err("load ramp needs at least one positive rate".into());
        }
        Ok(())
    }

    /// The interpolated load multiplier at `t_us` (clamped to the first and
    /// last breakpoint values outside the profile).
    pub fn rate_at(&self, t_us: f64) -> f64 {
        let pts = &self.points;
        if pts.is_empty() {
            return 1.0;
        }
        if t_us <= pts[0].t_us {
            return pts[0].rate;
        }
        for w in pts.windows(2) {
            if t_us <= w[1].t_us {
                let span = w[1].t_us - w[0].t_us;
                let f = (t_us - w[0].t_us) / span;
                return w[0].rate + f * (w[1].rate - w[0].rate);
            }
        }
        pts[pts.len() - 1].rate
    }

    /// Cumulative offered load over `[0, t_us]` (the integral of
    /// [`Self::rate_at`]; trapezoid-exact because the profile is
    /// piecewise linear).
    pub fn cumulative(&self, t_us: f64) -> f64 {
        let mut acc = 0.0;
        let mut prev_t = 0.0;
        let mut prev_r = self.rate_at(0.0);
        for p in &self.points {
            if p.t_us <= prev_t {
                continue;
            }
            let t = p.t_us.min(t_us);
            if t > prev_t {
                let r = self.rate_at(t);
                acc += (t - prev_t) * (prev_r + r) * 0.5;
                prev_t = t;
                prev_r = r;
            }
            if p.t_us >= t_us {
                return acc;
            }
        }
        if t_us > prev_t {
            acc += (t_us - prev_t) * (prev_r + self.rate_at(t_us)) * 0.5;
        }
        acc
    }

    /// Warp a uniform draw `u ∈ [0, 1)` into an arrival time in
    /// `[0, window_us]` distributed according to this profile: the inverse
    /// CDF of the (normalized) intensity, found by deterministic bisection.
    /// Falls back to `u * window_us` when the profile carries no load
    /// inside the window.
    pub fn warp(&self, u: f64, window_us: f64) -> f64 {
        let total = self.cumulative(window_us);
        if total.is_nan() || total <= 0.0 || !u.is_finite() {
            return u * window_us;
        }
        let target = u.clamp(0.0, 1.0) * total;
        let (mut lo, mut hi) = (0.0_f64, window_us);
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if self.cumulative(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// One engine-visible change of a channel's speed factor. A factor of 1 is
/// full speed; a factor of `k` multiplies the header's crossing time over
/// that channel by `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeedTransition {
    /// When the transition takes effect.
    pub at: SimTime,
    /// Raw channel id the transition applies to.
    pub channel: u32,
    /// New crossing-time multiplier (≥ 1).
    pub factor: u32,
}

/// Periodic bandwidth-degradation windows over a stochastic channel subset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModulation {
    /// Length of one degrade/recover period, in microseconds.
    pub period_us: f64,
    /// Fraction of each period spent degraded, in `(0, 1]`.
    pub duty: f64,
    /// Crossing-time multiplier while degraded (≥ 2 to be observable).
    pub factor: u32,
    /// Probability that any given channel participates.
    pub fraction: f64,
    /// Number of periods to materialize.
    pub windows: u32,
}

impl LinkModulation {
    /// Check the modulation parameters are well-formed.
    pub fn validate(&self) -> Result<(), String> {
        if self.period_us.is_nan() || self.period_us <= 0.0 {
            return Err("link modulation period must be positive".into());
        }
        if !(self.duty > 0.0 && self.duty <= 1.0) {
            return Err("link modulation duty must be in (0, 1]".into());
        }
        if self.factor < 2 {
            return Err("link modulation factor must be at least 2".into());
        }
        if !(0.0..=1.0).contains(&self.fraction) {
            return Err("link modulation fraction must be in [0, 1]".into());
        }
        if self.windows == 0 {
            return Err("link modulation needs at least one window".into());
        }
        Ok(())
    }

    /// Materialize the modulation against a topology with `num_channels`
    /// channels. Channels are considered in id order; each participating
    /// channel gets a random phase offset within its first period, then
    /// alternates degraded (`factor`) and recovered (`1`) for `windows`
    /// periods. The result is sorted by `(at, channel)` so engines can
    /// schedule it verbatim in a deterministic order.
    pub fn transitions(&self, num_channels: usize, rng: &mut SimRng) -> Vec<SpeedTransition> {
        let mut out = Vec::new();
        for ch in 0..num_channels {
            if !rng.chance(self.fraction) {
                continue;
            }
            let phase = rng.unit() * self.period_us;
            for w in 0..self.windows {
                let start = phase + w as f64 * self.period_us;
                out.push(SpeedTransition {
                    at: SimTime::from_us(start),
                    channel: ch as u32,
                    factor: self.factor,
                });
                out.push(SpeedTransition {
                    at: SimTime::from_us(start + self.duty * self.period_us),
                    channel: ch as u32,
                    factor: 1,
                });
            }
        }
        out.sort_by_key(|t| (t.at, t.channel));
        out
    }
}

/// A destination hotspot that drifts across the node space at a fixed
/// cadence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotspotDrift {
    /// Initial hotspot node index (taken modulo the node count).
    pub start: u32,
    /// Node-index increment applied every step.
    pub stride: u32,
    /// Time between drift steps, in microseconds.
    pub step_us: f64,
    /// Probability that a unicast targets the hotspot instead of its
    /// uniformly drawn destination.
    pub weight: f64,
}

impl HotspotDrift {
    /// Check the drift parameters are well-formed.
    pub fn validate(&self) -> Result<(), String> {
        if self.step_us.is_nan() || self.step_us <= 0.0 {
            return Err("hotspot drift step must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.weight) {
            return Err("hotspot drift weight must be in [0, 1]".into());
        }
        Ok(())
    }

    /// The hotspot's node index at time `t_us` in a network of `nodes`
    /// nodes.
    pub fn position_at(&self, t_us: f64, nodes: usize) -> u32 {
        let steps = if t_us <= 0.0 {
            0
        } else {
            (t_us / self.step_us).floor() as u64
        };
        let n = nodes.max(1) as u64;
        ((self.start as u64 + steps * self.stride as u64) % n) as u32
    }
}

/// One replayed injection: at `at_us`, node `src` offers a `length`-flit
/// unicast to `dst`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayEntry {
    /// Injection time, in microseconds.
    pub at_us: f64,
    /// Source node index.
    pub src: u32,
    /// Destination node index.
    pub dst: u32,
    /// Payload length in flits.
    pub length: u64,
}

/// A recorded traffic trace replayed as offered load.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceReplay {
    /// Replayed injections in recorded order.
    pub entries: Vec<ReplayEntry>,
}

impl TraceReplay {
    /// Check the replay is well-formed (non-empty, positive lengths,
    /// `src != dst`, finite non-negative times).
    pub fn validate(&self) -> Result<(), String> {
        if self.entries.is_empty() {
            return Err("trace replay needs at least one entry".into());
        }
        for (i, e) in self.entries.iter().enumerate() {
            if !(e.at_us.is_finite() && e.at_us >= 0.0) {
                return Err(format!("replay entry {i}: time must be finite and >= 0"));
            }
            if e.src == e.dst {
                return Err(format!("replay entry {i}: src equals dst ({})", e.src));
            }
            if e.length == 0 {
                return Err(format!("replay entry {i}: zero-length message"));
            }
        }
        Ok(())
    }

    /// Parse a recorded wormcast NDJSON event stream into offered traffic.
    ///
    /// Each recorded `inject` line contributes the source node and request
    /// time of one replayed unicast; the *first* `deliver` line of the same
    /// `(rep, msg)` supplies the destination and flit count. Messages with
    /// no recorded delivery (or delivered back to their source) are
    /// skipped. Entries keep the recorded injection order.
    pub fn from_ndjson(text: &str) -> Result<TraceReplay, String> {
        struct Pending {
            at_us: f64,
            src: u32,
            slot: usize,
        }
        let mut pending: Vec<((u64, u64), Pending)> = Vec::new();
        let mut entries: Vec<Option<ReplayEntry>> = Vec::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let ev = json_str_field(line, "ev")
                .ok_or_else(|| format!("line {}: missing \"ev\" field", ln + 1))?;
            let t_ps = json_u64_field(line, "t_ps")
                .ok_or_else(|| format!("line {}: missing \"t_ps\" field", ln + 1))?;
            let rep = json_u64_field(line, "rep").unwrap_or(0);
            match ev {
                "inject" => {
                    let msg = json_u64_field(line, "msg")
                        .ok_or_else(|| format!("line {}: inject without \"msg\"", ln + 1))?;
                    let node = json_u64_field(line, "node")
                        .ok_or_else(|| format!("line {}: inject without \"node\"", ln + 1))?;
                    let slot = entries.len();
                    entries.push(None);
                    pending.push((
                        (rep, msg),
                        Pending {
                            at_us: t_ps as f64 / 1e6,
                            src: node as u32,
                            slot,
                        },
                    ));
                }
                "deliver" => {
                    let msg = json_u64_field(line, "msg")
                        .ok_or_else(|| format!("line {}: deliver without \"msg\"", ln + 1))?;
                    let node = json_u64_field(line, "node")
                        .ok_or_else(|| format!("line {}: deliver without \"node\"", ln + 1))?;
                    let flits = json_u64_field(line, "flits").unwrap_or(1).max(1);
                    if let Some(pos) = pending.iter().position(|(k, _)| *k == (rep, msg)) {
                        let (_, p) = pending.swap_remove(pos);
                        if p.src != node as u32 {
                            entries[p.slot] = Some(ReplayEntry {
                                at_us: p.at_us,
                                src: p.src,
                                dst: node as u32,
                                length: flits,
                            });
                        }
                    }
                }
                _ => {}
            }
        }
        let entries: Vec<ReplayEntry> = entries.into_iter().flatten().collect();
        if entries.is_empty() {
            return Err("trace contains no replayable inject/deliver pairs".into());
        }
        Ok(TraceReplay { entries })
    }
}

/// Extract the string value of `"key":"..."` from a flat JSON line.
fn json_str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Extract the unsigned integer value of `"key":N` from a flat JSON line.
fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// A complete scenario schedule: any combination of the four dimensions.
/// An empty schedule (all `None`) is equivalent to no schedule at all.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule {
    /// Time-varying offered-load profile.
    pub ramp: Option<LoadRamp>,
    /// Periodic link-bandwidth degradation windows.
    pub modulation: Option<LinkModulation>,
    /// Drifting destination hotspot.
    pub hotspot: Option<HotspotDrift>,
    /// Recorded-trace replay as offered traffic.
    pub replay: Option<TraceReplay>,
}

/// Upper bound on the phase markers a schedule emits into telemetry.
pub const MAX_PHASE_MARKS: usize = 64;

impl Schedule {
    /// Whether no dimension is active.
    pub fn is_empty(&self) -> bool {
        self.ramp.is_none()
            && self.modulation.is_none()
            && self.hotspot.is_none()
            && self.replay.is_none()
    }

    /// Validate every present dimension.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(r) = &self.ramp {
            r.validate()?;
        }
        if let Some(m) = &self.modulation {
            m.validate()?;
        }
        if let Some(h) = &self.hotspot {
            h.validate()?;
        }
        if let Some(r) = &self.replay {
            r.validate()?;
        }
        Ok(())
    }

    /// Warp a uniform arrival draw `u ∈ [0, 1)` into `[0, window_us]`
    /// through the load ramp (identity scaling when no ramp is present).
    pub fn warp_arrival(&self, u: f64, window_us: f64) -> f64 {
        match &self.ramp {
            Some(r) => r.warp(u, window_us),
            None => u * window_us,
        }
    }

    /// Deterministic phase-boundary markers inside `[0, horizon_us]`:
    /// ramp breakpoints and hotspot drift steps, deduplicated, time-sorted
    /// and numbered, capped at [`MAX_PHASE_MARKS`]. Engines schedule these
    /// as `schedule_phase` telemetry events so drift is visible in traces.
    pub fn phase_marks(&self, horizon_us: f64) -> Vec<(SimTime, u32)> {
        let mut times: Vec<SimTime> = Vec::new();
        if let Some(r) = &self.ramp {
            for p in &r.points {
                if p.t_us > 0.0 && p.t_us <= horizon_us {
                    times.push(SimTime::from_us(p.t_us));
                }
            }
        }
        if let Some(h) = &self.hotspot {
            let mut t = h.step_us;
            while t <= horizon_us && times.len() < 4 * MAX_PHASE_MARKS {
                times.push(SimTime::from_us(t));
                t += h.step_us;
            }
        }
        times.sort_unstable();
        times.dedup();
        times.truncate(MAX_PHASE_MARKS);
        times
            .into_iter()
            .enumerate()
            .map(|(i, t)| (t, i as u32 + 1))
            .collect()
    }

    /// Materialize the link-modulation dimension against `num_channels`
    /// channels using `rng` (empty when no modulation is present).
    pub fn speed_transitions(&self, num_channels: usize, rng: &mut SimRng) -> Vec<SpeedTransition> {
        match &self.modulation {
            Some(m) => m.transitions(num_channels, rng),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_interpolates_and_clamps() {
        let r = LoadRamp::linear(1.0, 3.0, 10.0);
        assert!(r.validate().is_ok());
        assert_eq!(r.rate_at(-5.0), 1.0);
        assert_eq!(r.rate_at(0.0), 1.0);
        assert!((r.rate_at(5.0) - 2.0).abs() < 1e-12);
        assert_eq!(r.rate_at(10.0), 3.0);
        assert_eq!(r.rate_at(99.0), 3.0);
    }

    #[test]
    fn ramp_cumulative_is_trapezoid_exact() {
        let r = LoadRamp::linear(0.0, 2.0, 10.0);
        // Integral of t/5 over [0,10] = 10.
        assert!((r.cumulative(10.0) - 10.0).abs() < 1e-9);
        // Constant tail beyond the last point.
        assert!((r.cumulative(15.0) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn warp_is_monotone_and_biases_toward_load() {
        let r = LoadRamp::linear(0.1, 2.0, 40.0);
        let mut prev = -1.0;
        for i in 0..=20 {
            let u = i as f64 / 20.0;
            let t = r.warp(u, 40.0);
            assert!(t >= prev, "warp must be monotone");
            assert!((0.0..=40.0).contains(&t));
            prev = t;
        }
        // Median arrival lands late: most of the load is in the second half.
        assert!(r.warp(0.5, 40.0) > 20.0);
    }

    #[test]
    fn warp_handles_zero_load_window() {
        let r = LoadRamp {
            points: vec![
                RampPoint {
                    t_us: 50.0,
                    rate: 0.0,
                },
                RampPoint {
                    t_us: 60.0,
                    rate: 1.0,
                },
            ],
        };
        // No load inside [0, 40]: identity fallback.
        assert_eq!(r.warp(0.25, 40.0), 10.0);
    }

    #[test]
    fn modulation_transitions_are_sorted_and_paired() {
        let m = LinkModulation {
            period_us: 10.0,
            duty: 0.5,
            factor: 4,
            fraction: 0.5,
            windows: 3,
        };
        assert!(m.validate().is_ok());
        let mut rng = SimRng::new(7).substream("mod");
        let ts = m.transitions(32, &mut rng);
        assert!(!ts.is_empty());
        assert!(ts.windows(2).all(|w| w[0].at <= w[1].at), "time-sorted");
        let degrades = ts.iter().filter(|t| t.factor == 4).count();
        let restores = ts.iter().filter(|t| t.factor == 1).count();
        assert_eq!(degrades, restores, "every degrade pairs with a restore");
        // Deterministic for equal streams.
        let mut rng2 = SimRng::new(7).substream("mod");
        assert_eq!(ts, m.transitions(32, &mut rng2));
    }

    #[test]
    fn hotspot_drifts_with_wraparound() {
        let h = HotspotDrift {
            start: 60,
            stride: 5,
            step_us: 10.0,
            weight: 0.8,
        };
        assert!(h.validate().is_ok());
        assert_eq!(h.position_at(0.0, 64), 60);
        assert_eq!(h.position_at(9.9, 64), 60);
        assert_eq!(h.position_at(10.0, 64), 1); // (60 + 5) % 64
        assert_eq!(h.position_at(25.0, 64), 6);
    }

    #[test]
    fn replay_parses_recorded_ndjson() {
        let nd = "\
{\"t_ps\":0,\"ev\":\"inject\",\"rep\":0,\"msg\":1,\"node\":3}\n\
{\"t_ps\":500,\"ev\":\"channel_grant\",\"rep\":0,\"msg\":1,\"ch\":9}\n\
{\"t_ps\":2000000,\"ev\":\"deliver\",\"rep\":0,\"msg\":1,\"node\":7,\"flits\":16}\n\
{\"t_ps\":3000000,\"ev\":\"inject\",\"rep\":0,\"msg\":2,\"node\":5}\n";
        let r = TraceReplay::from_ndjson(nd).expect("parses");
        // msg 2 has no deliver line and is skipped.
        assert_eq!(
            r.entries,
            vec![ReplayEntry {
                at_us: 0.0,
                src: 3,
                dst: 7,
                length: 16,
            }]
        );
        assert!(r.validate().is_ok());
    }

    #[test]
    fn replay_rejects_empty_traces() {
        assert!(TraceReplay::from_ndjson("").is_err());
        let nd = "{\"t_ps\":0,\"ev\":\"complete\",\"rep\":0,\"msg\":1,\"node\":3}\n";
        assert!(TraceReplay::from_ndjson(nd).is_err());
    }

    #[test]
    fn phase_marks_merge_ramp_and_hotspot_boundaries() {
        let s = Schedule {
            ramp: Some(LoadRamp::linear(0.5, 2.0, 20.0)),
            hotspot: Some(HotspotDrift {
                start: 0,
                stride: 1,
                step_us: 15.0,
                weight: 0.5,
            }),
            ..Schedule::default()
        };
        let marks = s.phase_marks(40.0);
        let times: Vec<u64> = marks.iter().map(|(t, _)| t.as_ps()).collect();
        assert_eq!(times, vec![15_000_000, 20_000_000, 30_000_000]);
        let phases: Vec<u32> = marks.iter().map(|(_, p)| *p).collect();
        assert_eq!(phases, vec![1, 2, 3]);
    }

    #[test]
    fn empty_schedule_is_inert() {
        let s = Schedule::default();
        assert!(s.is_empty());
        assert!(s.validate().is_ok());
        assert_eq!(s.warp_arrival(0.25, 40.0), 10.0);
        assert!(s.phase_marks(100.0).is_empty());
        let mut rng = SimRng::new(1);
        assert!(s.speed_transitions(10, &mut rng).is_empty());
    }
}
