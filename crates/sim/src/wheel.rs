//! The calendar wheel: an O(1)-amortized future-event list with the exact
//! deterministic ordering of [`crate::queue::EventQueue`].
//!
//! Events are bucketed by time quantum (`bucket_width = 2^shift` ps) into a
//! power-of-two ring of buckets anchored at the current clock tick; events
//! beyond the ring horizon wait in a small overflow heap and migrate into
//! the ring as the clock advances. Within a bucket, events are kept sorted
//! by `(time, seq)` — the same total order as the binary-heap queue, where
//! `seq` is the global insertion sequence number — so two events at the
//! same instant still fire in the order they were scheduled and a run
//! driven by the wheel is bit-identical to one driven by the heap.
//!
//! The anchoring invariant that makes the ring sound: every pending event's
//! timestamp is `>= now` (scheduling into the past panics, and the clock
//! only ever advances to the globally earliest pending event), so all ring
//! events live in the half-open tick window `[tick(now), tick(now) + N)`
//! and bucket index `tick & (N-1)` is injective over the live window.
//!
//! Why a wheel: the engine's event population is dominated by short
//! deadlines (hop crossings, body drains, start-up timers) that land within
//! a few microseconds of `now`. The wheel turns each schedule/pop into a
//! couple of array writes on the active bucket instead of an O(log n) sift
//! plus the hash-table bookkeeping the cancellable queue pays, and finding
//! the next occupied bucket is a bitmap scan
//! ([`ActiveSet::next_at_or_after`]).
//!
//! Cancellation is deliberately not supported — the network engine never
//! cancels — which is what makes the per-event constant factor so small.
//! Use [`EventQueue`](crate::queue::EventQueue) when you need [`cancel`]
//! semantics.
//!
//! [`cancel`]: crate::queue::EventQueue::cancel

use crate::active_set::ActiveSet;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled event inside a bucket. The event payload sits in an
/// `Option` so it can be moved out at pop time without shifting the rest of
/// the bucket.
struct Slot<E> {
    time: SimTime,
    seq: u64,
    event: Option<E>,
}

struct Bucket<E> {
    items: Vec<Slot<E>>,
    /// Items before the cursor have already fired.
    cursor: usize,
    /// Whether `items[cursor..]` needs re-sorting before the next pop.
    dirty: bool,
}

impl<E> Bucket<E> {
    const fn new() -> Self {
        Bucket {
            items: Vec::new(),
            cursor: 0,
            dirty: false,
        }
    }

    /// Sort the unfired tail into `(time, seq)` order if pushes disordered
    /// it. Already-fired entries are untouched, so this never reorders the
    /// past.
    fn settle(&mut self) {
        if self.dirty {
            let cursor = self.cursor;
            self.items[cursor..].sort_unstable_by_key(|s| (s.time, s.seq));
            self.dirty = false;
        }
    }
}

struct Overflow<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Overflow<E> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<E> Eq for Overflow<E> {}
impl<E> PartialOrd for Overflow<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Overflow<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap inverted: earliest (time, seq) at the top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list with deterministic FIFO tie-breaking, O(1) amortized
/// schedule/pop, and no cancellation. Drop-in ordering-compatible with
/// [`EventQueue`](crate::queue::EventQueue): for any sequence of
/// `schedule`/`pop` calls both structures yield events in the identical
/// order.
pub struct CalendarWheel<E> {
    shift: u32,
    /// `num_buckets - 1`; bucket index of tick `t` is `t & mask`.
    mask: u64,
    buckets: Vec<Bucket<E>>,
    /// Bucket indices with unfired events — the wheel's active set.
    occupied: ActiveSet,
    /// Events beyond the ring horizon, migrated in as the clock advances.
    overflow: BinaryHeap<Overflow<E>>,
    now: SimTime,
    next_seq: u64,
    /// Unfired events currently in the ring (excludes overflow).
    ring_len: usize,
    /// Occupancy-bitmap scans performed by `pop`/`peek_time` (deterministic
    /// observability counter; does not affect event order).
    bucket_scans: u64,
}

impl<E> Default for CalendarWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarWheel<E> {
    /// A wheel with the default geometry: 512 buckets of 8.192 ns
    /// (2¹³ ps) — a ~4.2 µs horizon, sized so start-up latencies and body
    /// drains of the paper's constants land inside the ring.
    pub fn new() -> Self {
        Self::with_geometry(13, 512)
    }

    /// A wheel with `num_buckets` buckets (a power of two) of width
    /// `2^bucket_width_log2` picoseconds.
    ///
    /// # Panics
    /// Panics if `num_buckets` is not a power of two or the width exceeds
    /// the clock.
    pub fn with_geometry(bucket_width_log2: u32, num_buckets: usize) -> Self {
        assert!(
            num_buckets.is_power_of_two(),
            "bucket count must be a power of two"
        );
        assert!(bucket_width_log2 < 64, "bucket width overflows the clock");
        CalendarWheel {
            shift: bucket_width_log2,
            mask: num_buckets as u64 - 1,
            buckets: (0..num_buckets).map(|_| Bucket::new()).collect(),
            occupied: ActiveSet::new(num_buckets),
            overflow: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            ring_len: 0,
            bucket_scans: 0,
        }
    }

    /// The current simulation clock: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Whether any events remain pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// Number of events pushed so far (fired or pending); a deterministic
    /// progress measure, mirroring
    /// [`EventQueue::scheduled_total`](crate::queue::EventQueue::scheduled_total).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Occupancy-bitmap scans performed so far by [`CalendarWheel::pop`]
    /// and [`CalendarWheel::peek_time`]. Deterministic: a pure function of
    /// the schedule/pop/peek call sequence.
    pub fn bucket_scans(&self) -> u64 {
        self.bucket_scans
    }

    /// First tick beyond the ring window anchored at the current clock.
    #[inline]
    fn horizon(&self) -> u64 {
        (self.now.0 >> self.shift) + self.mask + 1
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock — scheduling into
    /// the past is always a model bug.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        if at.0 >> self.shift < self.horizon() {
            self.place(at, seq, event);
        } else {
            self.overflow.push(Overflow {
                time: at,
                seq,
                event,
            });
        }
    }

    /// Put an event into its ring bucket (its tick must be inside the
    /// window `[tick(now), tick(now) + N)`).
    fn place(&mut self, at: SimTime, seq: u64, event: E) {
        let idx = ((at.0 >> self.shift) & self.mask) as usize;
        let bucket = &mut self.buckets[idx];
        // An append keeps the tail sorted unless it lands before the
        // current last item; seqs grow monotonically, so only an earlier
        // *time* can disorder it.
        if let Some(last) = bucket.items.last() {
            if at < last.time {
                bucket.dirty = true;
            }
        }
        bucket.items.push(Slot {
            time: at,
            seq,
            event: Some(event),
        });
        self.ring_len += 1;
        self.occupied.insert(idx);
    }

    /// Move every overflow event whose tick now falls inside the ring
    /// window into the ring. Called before any scan, so the remaining
    /// overflow is strictly later than everything in the ring.
    fn migrate_overflow(&mut self) {
        while let Some(top) = self.overflow.peek() {
            if top.time.0 >> self.shift >= self.horizon() {
                break;
            }
            let o = self.overflow.pop().expect("peeked");
            self.place(o.time, o.seq, o.event);
        }
    }

    /// Index of the ring bucket holding the earliest unfired event, if the
    /// ring is non-empty. Ticks `[tick(now), tick(now)+N)` map monotonically
    /// onto indices `base..N` then `0..base`, so the earliest occupied
    /// bucket is the first occupancy bit at or after `base`, wrapping once.
    #[inline]
    fn earliest_bucket(&self) -> Option<usize> {
        if self.ring_len == 0 {
            return None;
        }
        let base = ((self.now.0 >> self.shift) & self.mask) as usize;
        self.occupied
            .next_at_or_after(base)
            .or_else(|| self.occupied.next_at_or_after(0))
    }

    /// Remove and return the earliest pending event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.migrate_overflow();
        self.bucket_scans += 1;
        if let Some(idx) = self.earliest_bucket() {
            let bucket = &mut self.buckets[idx];
            bucket.settle();
            let slot = &mut bucket.items[bucket.cursor];
            let (time, event) = (slot.time, slot.event.take().expect("unfired slot"));
            bucket.cursor += 1;
            self.ring_len -= 1;
            debug_assert!(time >= self.now, "wheel went backwards");
            self.now = time;
            if bucket.cursor == bucket.items.len() {
                bucket.items.clear();
                bucket.cursor = 0;
                bucket.dirty = false;
                self.occupied.remove(idx);
            }
            return Some((time, event));
        }
        // Ring empty: the next event (if any) leads the overflow heap.
        let o = self.overflow.pop()?;
        debug_assert!(o.time >= self.now, "wheel went backwards");
        self.now = o.time;
        Some((o.time, o.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.migrate_overflow();
        self.bucket_scans += 1;
        if let Some(idx) = self.earliest_bucket() {
            let bucket = &mut self.buckets[idx];
            bucket.settle();
            return Some(bucket.items[bucket.cursor].time);
        }
        self.overflow.peek().map(|o| o.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::EventQueue;
    use crate::rng::SimRng;
    use crate::time::SimDuration;

    fn t(ps: u64) -> SimTime {
        SimTime::from_ps(ps)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarWheel::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = CalendarWheel::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = CalendarWheel::new();
        q.schedule(t(10), ());
        q.schedule(t(10), ());
        q.schedule(t(25), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), t(10));
        q.pop();
        assert_eq!(q.now(), t(10));
        q.pop();
        assert_eq!(q.now(), t(25));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_into_past_panics() {
        let mut q = CalendarWheel::new();
        q.schedule(t(10), ());
        q.pop();
        q.schedule(t(5), ());
    }

    #[test]
    fn far_future_events_cross_the_horizon() {
        // Default geometry horizon is ~4.2e6 ps; stress multiple epochs.
        let mut q = CalendarWheel::new();
        q.schedule(t(30_000_000), "late");
        q.schedule(t(1_000), "early");
        q.schedule(t(8_000_000), "middle");
        assert_eq!(q.pop(), Some((t(1_000), "early")));
        // Schedule relative to now into a fresh epoch while draining.
        q.schedule(t(8_000_001), "middle2");
        assert_eq!(q.pop(), Some((t(8_000_000), "middle")));
        assert_eq!(q.pop(), Some((t(8_000_001), "middle2")));
        assert_eq!(q.pop(), Some((t(30_000_000), "late")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn same_bucket_disorder_is_resorted() {
        // Two events in one bucket scheduled out of time order.
        let mut q = CalendarWheel::with_geometry(10, 64); // 1024 ps buckets
        q.schedule(t(900), "b");
        q.schedule(t(100), "a");
        q.schedule(t(901), "c");
        assert_eq!(q.pop(), Some((t(100), "a")));
        assert_eq!(q.pop(), Some((t(900), "b")));
        assert_eq!(q.pop(), Some((t(901), "c")));
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q = CalendarWheel::new();
        q.schedule(t(10), 1u32);
        let (now, _) = q.pop().unwrap();
        q.schedule(now + SimDuration::from_ps(5), 2u32);
        q.schedule(now + SimDuration::from_ps(1), 3u32);
        assert_eq!(q.pop(), Some((t(11), 3)));
        assert_eq!(q.pop(), Some((t(15), 2)));
    }

    #[test]
    fn peek_matches_pop_and_is_stable() {
        let mut q = CalendarWheel::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(t(500), "x");
        q.schedule(t(40), "y");
        assert_eq!(q.peek_time(), Some(t(40)));
        assert_eq!(q.peek_time(), Some(t(40)), "peek is idempotent");
        assert_eq!(q.pop(), Some((t(40), "y")));
        assert_eq!(q.peek_time(), Some(t(500)));
        q.pop();
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn peek_does_not_disturb_later_schedules() {
        // Regression: a peek at a far-future event must not shift the ring
        // anchor — a subsequent near-now schedule still pops first.
        let mut q = CalendarWheel::with_geometry(4, 16); // horizon 256 ps
        q.schedule(t(10_000), "far");
        assert_eq!(q.peek_time(), Some(t(10_000)));
        q.schedule(t(4), "near");
        assert_eq!(q.peek_time(), Some(t(4)));
        assert_eq!(q.pop(), Some((t(4), "near")));
        assert_eq!(q.pop(), Some((t(10_000), "far")));
    }

    /// The contract the engine swap rests on: for an arbitrary interleaved
    /// schedule/pop workload, the wheel yields the exact event sequence of
    /// the reference heap queue.
    #[test]
    fn orders_identically_to_event_queue_on_random_workloads() {
        for seed in 0..8u64 {
            let mut rng = SimRng::new(seed);
            let mut heap = EventQueue::new();
            // Deliberately awkward geometry: tiny buckets force frequent
            // horizon crossings and overflow migration.
            let mut wheel = CalendarWheel::with_geometry(4, 16);
            let mut next_id = 0u64;
            for _round in 0..2_000 {
                // Burst of schedules at mixed offsets: same-instant ties,
                // in-bucket, near-future, far-future.
                for _ in 0..(rng.index(4) + 1) {
                    let offset = match rng.index(4) {
                        0 => 0,
                        1 => rng.next_u64() % 16,
                        2 => rng.next_u64() % 1_000,
                        _ => rng.next_u64() % 100_000,
                    };
                    let at = heap.now() + SimDuration::from_ps(offset);
                    heap.schedule(at, next_id);
                    wheel.schedule(at, next_id);
                    next_id += 1;
                }
                for _ in 0..rng.index(4) {
                    let a = heap.pop();
                    let b = wheel.pop();
                    assert_eq!(a, b, "seed {seed}");
                    assert_eq!(heap.now(), wheel.now());
                }
                assert_eq!(heap.peek_time(), wheel.peek_time(), "seed {seed}");
            }
            loop {
                let a = heap.pop();
                let b = wheel.pop();
                assert_eq!(a, b, "seed {seed} (drain)");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn len_and_scheduled_total_track() {
        let mut q = CalendarWheel::new();
        assert_eq!(q.len(), 0);
        q.schedule(t(1), ());
        q.schedule(t(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn horizon_boundary_is_exclusive() {
        // Geometry (4, 16): 16-ps buckets, ring window [tick(now),
        // tick(now)+16). At now=0 the last in-ring instant is 255; 256 is
        // the first tick past the horizon and must take the overflow path,
        // yet still pop in global order once the clock reaches its window.
        let mut q = CalendarWheel::with_geometry(4, 16);
        q.schedule(t(255), "last-inside");
        q.schedule(t(256), "first-outside");
        q.schedule(t(0), "now-tick");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((t(0), "now-tick")));
        assert_eq!(q.pop(), Some((t(255), "last-inside")));
        assert_eq!(q.pop(), Some((t(256), "first-outside")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn schedule_at_the_current_instant_fires_next() {
        let mut q = CalendarWheel::with_geometry(4, 16);
        q.schedule(t(100), 1);
        q.schedule(t(200), 2);
        assert_eq!(q.pop(), Some((t(100), 1)));
        // `at == now` is legal (only strictly-past schedules panic) and
        // fires before everything later, FIFO after already-fired peers.
        q.schedule(t(100), 3);
        assert_eq!(q.pop(), Some((t(100), 3)));
        assert_eq!(q.pop(), Some((t(200), 2)));
    }

    #[test]
    fn horizon_window_tracks_the_advancing_clock() {
        let mut q = CalendarWheel::with_geometry(4, 16);
        q.schedule(t(300), "a"); // overflow while now = 0
        assert_eq!(q.pop(), Some((t(300), "a")));
        // The window re-anchors at tick(300) = 18, so the horizon tick is
        // 34: instant 543 is the new last-inside, 544 the new first-outside.
        q.schedule(t(543), "in-ring");
        q.schedule(t(544), "overflow");
        q.schedule(t(300), "at-now");
        assert_eq!(q.pop(), Some((t(300), "at-now")));
        assert_eq!(q.pop(), Some((t(543), "in-ring")));
        assert_eq!(q.pop(), Some((t(544), "overflow")));
        assert_eq!(q.pop(), None);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]

        /// Property form of the engine-swap contract: under arbitrary
        /// schedule/pop interleavings — offsets spanning same-instant ties,
        /// in-bucket, in-ring and past-horizon — the wheel's `(time, seq)`
        /// order, clock and peeks all match the reference heap queue.
        #[test]
        fn wheel_matches_heap_on_arbitrary_interleavings(
            ops in proptest::collection::vec((0u8..3, 0u64..2_000), 1usize..200),
        ) {
            use proptest::prelude::prop_assert_eq;
            // Tiny geometry: a 256-ps horizon forces constant overflow
            // migration and window wraps.
            let mut heap = EventQueue::new();
            let mut wheel = CalendarWheel::with_geometry(4, 16);
            let mut next_id = 0u64;
            for (kind, off) in ops {
                if kind < 2 {
                    // Schedule (twice as likely as pop, so queues grow).
                    let at = heap.now() + SimDuration::from_ps(off);
                    heap.schedule(at, next_id);
                    wheel.schedule(at, next_id);
                    next_id += 1;
                } else {
                    prop_assert_eq!(heap.pop(), wheel.pop());
                    prop_assert_eq!(heap.now(), wheel.now());
                }
                prop_assert_eq!(heap.peek_time(), wheel.peek_time());
            }
            loop {
                let (a, b) = (heap.pop(), wheel.pop());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
