//! A dense index set over `0..capacity` backed by a bitmap.
//!
//! The engine's hot paths need set membership over small dense id spaces
//! (channels, wheel buckets) with none of the hashing and heap traffic a
//! `HashSet` pays per operation: [`ActiveSet`] gives O(1) insert / remove /
//! contains on one cache line per 512 ids, plus an O(words) ordered scan
//! (`next_at_or_after`) that the calendar wheel uses to find its next
//! occupied bucket.

/// A set of `usize` indices in `0..capacity`, stored one bit per index.
#[derive(Debug, Clone, Default)]
pub struct ActiveSet {
    words: Vec<u64>,
    len: usize,
}

impl ActiveSet {
    /// An empty set able to hold indices in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        ActiveSet {
            words: vec![0; capacity.div_ceil(64)],
            len: 0,
        }
    }

    /// Number of indices the set can hold (rounded up to a whole word).
    pub fn capacity(&self) -> usize {
        self.words.len() * 64
    }

    /// Number of indices currently in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `i`. Returns `true` if it was not already present.
    ///
    /// # Panics
    /// Panics if `i` is out of capacity.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let fresh = self.words[w] & b == 0;
        self.words[w] |= b;
        self.len += fresh as usize;
        fresh
    }

    /// Remove `i`. Returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        let Some(word) = self.words.get_mut(i / 64) else {
            return false;
        };
        let b = 1u64 << (i % 64);
        let had = *word & b != 0;
        *word &= !b;
        self.len -= had as usize;
        had
    }

    /// Whether `i` is in the set. Out-of-capacity indices are never present.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    /// The smallest member `>= i`, if any.
    #[inline]
    pub fn next_at_or_after(&self, i: usize) -> Option<usize> {
        let mut w = i / 64;
        if w >= self.words.len() {
            return None;
        }
        // Mask off bits below `i` in the first word, then scan whole words.
        let mut word = self.words[w] & (u64::MAX << (i % 64));
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= self.words.len() {
                return None;
            }
            word = self.words[w];
        }
    }

    /// Remove every index.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Grow capacity to at least `capacity` (existing members unchanged).
    pub fn grow(&mut self, capacity: usize) {
        let words = capacity.div_ceil(64);
        if words > self.words.len() {
            self.words.resize(words, 0);
        }
    }

    /// The members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            let mut rest = bits;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let b = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(w * 64 + b)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = ActiveSet::new(200);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(199));
        assert!(!s.insert(63), "double insert");
        assert_eq!(s.len(), 4);
        assert!(s.contains(63) && s.contains(64) && !s.contains(65));
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert_eq!(s.len(), 3);
        assert!(!s.contains(63));
        assert!(!s.contains(100_000), "out of capacity is absent");
        assert!(!s.remove(100_000));
    }

    #[test]
    fn next_at_or_after_scans_in_order() {
        let mut s = ActiveSet::new(300);
        for i in [3usize, 64, 65, 130, 299] {
            s.insert(i);
        }
        assert_eq!(s.next_at_or_after(0), Some(3));
        assert_eq!(s.next_at_or_after(3), Some(3));
        assert_eq!(s.next_at_or_after(4), Some(64));
        assert_eq!(s.next_at_or_after(65), Some(65));
        assert_eq!(s.next_at_or_after(66), Some(130));
        assert_eq!(s.next_at_or_after(131), Some(299));
        assert_eq!(s.next_at_or_after(300), None);
        assert_eq!(ActiveSet::new(0).next_at_or_after(0), None);
    }

    #[test]
    fn iter_yields_sorted_members() {
        let mut s = ActiveSet::new(256);
        let members = [7usize, 8, 63, 64, 128, 255];
        for &i in members.iter().rev() {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), members);
    }

    #[test]
    fn clear_and_grow() {
        let mut s = ActiveSet::new(10);
        s.insert(5);
        s.clear();
        assert!(s.is_empty() && !s.contains(5));
        s.grow(1000);
        assert!(s.insert(999));
        assert_eq!(s.next_at_or_after(0), Some(999));
    }
}
