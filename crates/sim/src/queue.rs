//! The future-event list: a deterministic priority queue of timed events.
//!
//! Ties are broken by insertion sequence number, so two events scheduled for
//! the same instant fire in the order they were scheduled. This mirrors the
//! quasi-parallel process semantics of CSIM (the engine underneath the paper's
//! MultiSim simulator) closely enough for every quantity the paper reports,
//! while keeping runs bit-reproducible.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list with deterministic FIFO tie-breaking and O(log n)
/// schedule/pop. Cancellation is lazy: cancelled ids are skipped at pop time.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    /// Seqs of events that are scheduled and not yet fired or cancelled.
    pending: std::collections::HashSet<u64>,
    /// Seqs cancelled but still physically present in the heap.
    cancelled: std::collections::HashSet<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            pending: std::collections::HashSet::new(),
            cancelled: std::collections::HashSet::new(),
        }
    }

    /// The current simulation clock: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock — scheduling into the
    /// past is always a model bug.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
        self.pending.insert(seq);
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (i.e. had not yet fired or been cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.pending.remove(&id.0) {
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// Remove and return the earliest pending event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.pending.remove(&entry.seq);
            debug_assert!(entry.time >= self.now, "event heap went backwards");
            self.now = entry.time;
            return Some((entry.time, entry.event));
        }
        None
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// Whether any events remain pending.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Number of events pushed so far (fired, pending or cancelled); useful as
    /// a deterministic progress measure in tests.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ps: u64) -> SimTime {
        SimTime::from_ps(ps)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(t(10), ());
        q.schedule(t(10), ());
        q.schedule(t(25), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), t(10));
        q.pop();
        assert_eq!(q.now(), t(10));
        q.pop();
        assert_eq!(q.now(), t(25));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(t(10), ());
        q.pop();
        q.schedule(t(5), ());
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert!(q.cancel(a));
        assert_eq!(q.pop(), Some((t(20), "b")));
    }

    #[test]
    fn cancel_twice_is_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.pop();
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_unknown_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(20)));
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1u32);
        let (now, _) = q.pop().unwrap();
        // Schedule relative to the popped time, as engines do.
        q.schedule(now + SimDuration::from_ps(5), 2u32);
        q.schedule(now + SimDuration::from_ps(1), 3u32);
        assert_eq!(q.pop(), Some((t(11), 3)));
        assert_eq!(q.pop(), Some((t(15), 2)));
    }
}
