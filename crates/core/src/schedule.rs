//! Broadcast schedules: the algorithm-independent representation of a
//! broadcast operation.
//!
//! A broadcast is a set of messages, each belonging to a *message-passing
//! step*. A node may send its scheduled messages as soon as it holds the
//! payload — i.e. immediately for the source, or upon its own delivery for
//! relay nodes — which is how asynchronous wormhole implementations of these
//! algorithms behave; the step numbers record the logical phase (and drive
//! analyses like step counting), while actual timing emerges from the
//! network simulation.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use wormcast_routing::CodedPath;
use wormcast_topology::{Mesh, NodeId, Topology};

/// The routing plan of one scheduled message.
#[derive(Debug, Clone)]
pub enum RoutePlan {
    /// A precomputed (possibly multidestination) coded path.
    Coded(CodedPath),
    /// An adaptively routed point-to-point leg (AB's corner legs).
    Adaptive {
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
}

impl RoutePlan {
    /// The sending node.
    pub fn src(&self) -> NodeId {
        match self {
            RoutePlan::Coded(cp) => cp.src(),
            RoutePlan::Adaptive { src, .. } => *src,
        }
    }

    /// The nodes that receive a copy from this message.
    pub fn receivers(&self, mesh: &Mesh) -> Vec<NodeId> {
        match self {
            RoutePlan::Coded(cp) => cp.receivers(mesh),
            RoutePlan::Adaptive { dst, .. } => vec![*dst],
        }
    }
}

/// One message of a broadcast schedule.
#[derive(Debug, Clone)]
pub struct ScheduledMessage {
    /// 1-based message-passing step this message belongs to.
    pub step: u32,
    /// Where it goes and how.
    pub plan: RoutePlan,
    /// Whether the start-up latency Ts is charged for this message. `false`
    /// only for hardware-relayed continuation segments of a chained coded
    /// path (AB's serpentine dissemination), which stay within one
    /// message-passing step.
    pub charge_startup: bool,
}

impl ScheduledMessage {
    /// An ordinary step message (start-up charged).
    pub fn step_message(step: u32, plan: RoutePlan) -> Self {
        ScheduledMessage {
            step,
            plan,
            charge_startup: true,
        }
    }

    /// A hardware-relayed continuation of a chained coded path: same step,
    /// no extra start-up.
    pub fn continuation(step: u32, plan: RoutePlan) -> Self {
        ScheduledMessage {
            step,
            plan,
            charge_startup: false,
        }
    }
}

/// A complete broadcast schedule for one source node.
#[derive(Debug, Clone)]
pub struct BroadcastSchedule {
    /// The broadcast source.
    pub source: NodeId,
    /// All messages, in no particular order.
    pub messages: Vec<ScheduledMessage>,
    /// Human-readable algorithm name.
    pub algorithm: &'static str,
}

/// A validation failure found by [`BroadcastSchedule::validate`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScheduleError {
    /// A node would receive the payload more than once.
    DuplicateDelivery(NodeId),
    /// A node never receives the payload.
    Missed(NodeId),
    /// The source is listed as a receiver.
    DeliversToSource,
    /// A message is sent by a node that does not hold the payload by the
    /// start of that step.
    SenderWithoutPayload {
        /// The offending sender.
        node: NodeId,
        /// The step in which it is asked to send.
        step: u32,
    },
    /// Step numbers are not contiguous starting at 1.
    BadStepNumbering,
    /// A node sends more messages in one step than it has injection ports.
    FanoutExceeded {
        /// The offending sender.
        node: NodeId,
        /// The step in which the fan-out occurs.
        step: u32,
        /// Messages the node sends in that step.
        sends: usize,
    },
}

impl BroadcastSchedule {
    /// Total number of message-passing steps.
    pub fn steps(&self) -> u32 {
        self.messages.iter().map(|m| m.step).max().unwrap_or(0)
    }

    /// Total number of messages.
    pub fn num_messages(&self) -> usize {
        self.messages.len()
    }

    /// Sum of path lengths (channel crossings) over all messages — the
    /// schedule's total channel demand.
    pub fn total_channel_demand(&self, mesh: &Mesh) -> usize {
        self.messages
            .iter()
            .map(|m| match &m.plan {
                RoutePlan::Coded(cp) => cp.path.len(),
                RoutePlan::Adaptive { src, dst } => mesh.distance(*src, *dst) as usize,
            })
            .sum()
    }

    /// The longest single path used, in hops.
    pub fn max_path_len(&self, mesh: &Mesh) -> usize {
        self.messages
            .iter()
            .map(|m| match &m.plan {
                RoutePlan::Coded(cp) => cp.path.len(),
                RoutePlan::Adaptive { src, dst } => mesh.distance(*src, *dst) as usize,
            })
            .max()
            .unwrap_or(0)
    }

    /// Check the schedule's correctness invariants:
    ///
    /// 1. every non-source node receives the payload **exactly once** and the
    ///    source never receives it;
    /// 2. every sender holds the payload before its step begins (the source
    ///    from step 1, relays from the step after their delivery);
    /// 3. step numbers are contiguous from 1;
    /// 4. no node sends more than `ports` messages in a single step.
    pub fn validate(&self, mesh: &Mesh, ports: usize) -> Result<(), ScheduleError> {
        // Step numbering.
        let steps = self.steps();
        if steps == 0 {
            return Err(ScheduleError::BadStepNumbering);
        }
        let mut present = vec![false; steps as usize + 1];
        for m in &self.messages {
            if m.step == 0 {
                return Err(ScheduleError::BadStepNumbering);
            }
            present[m.step as usize] = true;
        }
        if !present[1..].iter().all(|&p| p) {
            return Err(ScheduleError::BadStepNumbering);
        }

        // Exactly-once coverage; record delivery step per node.
        let mut delivered_step: HashMap<NodeId, u32> = HashMap::new();
        for m in &self.messages {
            for r in m.plan.receivers(mesh) {
                if r == self.source {
                    return Err(ScheduleError::DeliversToSource);
                }
                if delivered_step.insert(r, m.step).is_some() {
                    return Err(ScheduleError::DuplicateDelivery(r));
                }
            }
        }
        for n in (0..mesh.num_nodes() as u32).map(NodeId) {
            if n != self.source && !delivered_step.contains_key(&n) {
                return Err(ScheduleError::Missed(n));
            }
        }

        // Senders hold the payload in time, and per-step fan-out. A chained
        // continuation (no start-up) may be fed by a delivery in its own
        // step; ordinary messages need a strictly earlier one.
        let mut fanout: BTreeMap<(NodeId, u32), usize> = BTreeMap::new();
        for m in &self.messages {
            let s = m.plan.src();
            if s != self.source {
                let ok = match delivered_step.get(&s) {
                    Some(&got) => got < m.step || (got == m.step && !m.charge_startup),
                    None => false,
                };
                if !ok {
                    return Err(ScheduleError::SenderWithoutPayload {
                        node: s,
                        step: m.step,
                    });
                }
            }
            *fanout.entry((s, m.step)).or_insert(0) += 1;
        }
        for ((node, step), sends) in fanout {
            if sends > ports {
                return Err(ScheduleError::FanoutExceeded { node, step, sends });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormcast_routing::{dor_path, CodedPath, Path};
    use wormcast_topology::Coord;

    fn unicast(m: &Mesh, step: u32, src: NodeId, dst: NodeId) -> ScheduledMessage {
        ScheduledMessage::step_message(
            step,
            RoutePlan::Coded(CodedPath::unicast(m, dor_path(m, src, dst))),
        )
    }

    /// A hand-built valid 2-step broadcast on a 1x4 mesh (line).
    fn line_schedule(m: &Mesh) -> BroadcastSchedule {
        let n = |x: u16| m.node_at(&Coord::new(&[x]));
        BroadcastSchedule {
            source: n(0),
            algorithm: "test",
            messages: vec![
                unicast(m, 1, n(0), n(2)),
                unicast(m, 2, n(0), n(1)),
                unicast(m, 2, n(2), n(3)),
            ],
        }
    }

    #[test]
    fn valid_schedule_passes() {
        let m = Mesh::new(&[4]);
        let s = line_schedule(&m);
        assert_eq!(s.steps(), 2);
        assert_eq!(s.num_messages(), 3);
        s.validate(&m, 1).unwrap();
    }

    #[test]
    fn duplicate_delivery_detected() {
        let m = Mesh::new(&[4]);
        let mut s = line_schedule(&m);
        let n = |x: u16| m.node_at(&Coord::new(&[x]));
        s.messages.push(unicast(&m, 2, n(0), n(3)));
        assert_eq!(
            s.validate(&m, 2),
            Err(ScheduleError::DuplicateDelivery(n(3)))
        );
    }

    #[test]
    fn missed_node_detected() {
        let m = Mesh::new(&[4]);
        let mut s = line_schedule(&m);
        s.messages.pop();
        assert!(matches!(s.validate(&m, 1), Err(ScheduleError::Missed(_))));
    }

    #[test]
    fn sender_without_payload_detected() {
        let m = Mesh::new(&[4]);
        let n = |x: u16| m.node_at(&Coord::new(&[x]));
        let s = BroadcastSchedule {
            source: n(0),
            algorithm: "test",
            messages: vec![
                // n(2) sends in step 1 but only receives in step 2.
                unicast(&m, 1, n(2), n(3)),
                unicast(&m, 2, n(0), n(2)),
                unicast(&m, 1, n(0), n(1)),
            ],
        };
        assert_eq!(
            s.validate(&m, 1),
            Err(ScheduleError::SenderWithoutPayload {
                node: n(2),
                step: 1
            })
        );
    }

    #[test]
    fn same_step_relay_rejected() {
        // Receiving in step k and sending in step k is not allowed.
        let m = Mesh::new(&[4]);
        let n = |x: u16| m.node_at(&Coord::new(&[x]));
        let s = BroadcastSchedule {
            source: n(0),
            algorithm: "test",
            messages: vec![
                unicast(&m, 1, n(0), n(1)),
                unicast(&m, 1, n(1), n(2)),
                unicast(&m, 2, n(2), n(3)),
            ],
        };
        assert!(matches!(
            s.validate(&m, 1),
            Err(ScheduleError::SenderWithoutPayload { .. })
        ));
    }

    #[test]
    fn gap_in_steps_detected() {
        let m = Mesh::new(&[4]);
        let n = |x: u16| m.node_at(&Coord::new(&[x]));
        let s = BroadcastSchedule {
            source: n(0),
            algorithm: "test",
            messages: vec![
                unicast(&m, 1, n(0), n(1)),
                unicast(&m, 3, n(0), n(2)),
                unicast(&m, 3, n(1), n(3)),
            ],
        };
        assert_eq!(s.validate(&m, 2), Err(ScheduleError::BadStepNumbering));
    }

    #[test]
    fn fanout_limit_enforced() {
        let m = Mesh::new(&[4]);
        let n = |x: u16| m.node_at(&Coord::new(&[x]));
        let s = BroadcastSchedule {
            source: n(0),
            algorithm: "test",
            messages: vec![
                unicast(&m, 1, n(0), n(1)),
                unicast(&m, 1, n(0), n(2)),
                unicast(&m, 1, n(0), n(3)),
            ],
        };
        assert!(s.validate(&m, 3).is_ok());
        assert_eq!(
            s.validate(&m, 2),
            Err(ScheduleError::FanoutExceeded {
                node: n(0),
                step: 1,
                sends: 3
            })
        );
    }

    #[test]
    fn delivers_to_source_detected() {
        let m = Mesh::new(&[4]);
        let n = |x: u16| m.node_at(&Coord::new(&[x]));
        let s = BroadcastSchedule {
            source: n(1),
            algorithm: "test",
            messages: vec![ScheduledMessage::step_message(
                1,
                RoutePlan::Coded(CodedPath::gather_all(
                    &m,
                    Path::through(&m, &[n(3), n(2), n(1), n(0)]),
                )),
            )],
        };
        // n(3) isn't even the source here; but the path delivers to n(1).
        // The sender check would also fire; delivery check fires first.
        assert_eq!(s.validate(&m, 1), Err(ScheduleError::DeliversToSource));
    }

    #[test]
    fn demand_and_max_path_metrics() {
        let m = Mesh::new(&[4]);
        let s = line_schedule(&m);
        assert_eq!(s.total_channel_demand(&m), 2 + 1 + 1);
        assert_eq!(s.max_path_len(&m), 2);
    }
}
