//! # wormcast-broadcast — broadcast algorithms for wormhole meshes
//!
//! The reproduction's core: the four broadcast algorithms compared by
//! Al-Dubai & Ould-Khaoua (ICPPW 2005), each expressed as a
//! [`BroadcastSchedule`] — a set of (possibly multidestination) messages
//! grouped into message-passing steps:
//!
//! | Algorithm | Module | Steps (3D) | Substrate |
//! |-----------|--------|------------|-----------|
//! | [`Algorithm::Rd`] (Recursive Doubling) | [`rd`] | ⌈log₂N⌉ | DOR unicast |
//! | [`Algorithm::Edn`] (Extended Dominating Node) | [`edn`] | k+m+4 | DOR unicast, 3-port |
//! | [`Algorithm::Db`] (Deterministic Broadcast) | [`db`] | 4 | DOR + CPR |
//! | [`Algorithm::Ab`] (Adaptive Broadcast) | [`ab`] | 3 | west-first + CPR |
//! | [`Algorithm::Qab`] (Queue-aware Adaptive Broadcast) | [`qab`] | 3 | queue-aware negative-first + CPR |
//!
//! Schedules are pure data: simulation happens in `wormcast-network`, driven
//! by the executor in `wormcast-workload`. [`BroadcastSchedule::validate`]
//! checks the correctness invariants (exactly-once coverage, causal senders,
//! port budgets) that every constructor here guarantees.
//!
//! The paper's future-directions topologies are covered by [`extensions`]:
//! ring-based coded-path broadcast on the k-ary n-cube and complete-graph
//! fan broadcast on the generalized hypercube.

#![warn(missing_docs)]

pub mod ab;
pub mod algorithm;
pub mod db;
pub mod edn;
pub mod extensions;
pub mod multicast;
pub mod qab;
pub mod rd;
pub mod schedule;
pub mod viz;

pub use ab::{ab_schedule, ab_steps};
pub use algorithm::{Algorithm, RoutingKind};
pub use db::{db_schedule, db_steps};
pub use edn::{edn_schedule, edn_steps};
pub use extensions::{ghc_broadcast, torus_ring_broadcast, ExtError, ExtMessage, ExtSchedule};
pub use multicast::{cpr_multicast, sp_multicast, um_multicast, um_steps, validate_multicast};
pub use qab::{qab_schedule, qab_steps};
pub use rd::{rd_schedule, rd_steps};
pub use schedule::{BroadcastSchedule, RoutePlan, ScheduleError, ScheduledMessage};
pub use viz::{render_all, render_step};
