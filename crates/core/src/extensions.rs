//! Future-directions extensions (§4 of the paper): coded-path broadcast for
//! the k-ary n-cube (torus) and the generalized hypercube.
//!
//! "A number of interconnection networks have been proposed for
//! multicomputers over the past years such as the k-ary n-cube and
//! generalised hypercube. An interesting line of research would be to
//! propose multicast and broadcast algorithms for these common topologies."
//!
//! The torus scheme generalises DB's idea directly: a wraparound **ring** is
//! a single coded path that covers a whole dimension in one message-passing
//! step, so an n-dimensional torus broadcasts in exactly **n steps** —
//! dimension by dimension, every holder covering its ring. (On real
//! wormhole hardware ring paths need an extra virtual channel to stay
//! deadlock-free, the classic dateline argument; the schedule itself is
//! topology-level and the simulator in this workspace is mesh-only, so the
//! torus and GHC schedules come with their own validator and an analytic
//! zero-load latency model instead of a flit simulation.)
//!
//! The generalized hypercube broadcasts in **n steps** too: each dimension
//! is a complete graph, so a holder covers its whole dimension-d row with
//! `k_d − 1` single-hop unicasts in one step (multiport permitting).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use wormcast_routing::{CodedPath, Path};
use wormcast_sim::SimDuration;
use wormcast_topology::{GeneralizedHypercube, NodeId, Topology, Torus};

/// One step-tagged coded path of a topology-level broadcast schedule.
#[derive(Debug, Clone)]
pub struct ExtMessage {
    /// 1-based message-passing step.
    pub step: u32,
    /// The multidestination path.
    pub path: CodedPath,
}

/// A broadcast schedule over an arbitrary [`Topology`] (torus / GHC
/// extensions), with its own validator.
#[derive(Debug, Clone)]
pub struct ExtSchedule {
    /// The broadcast source.
    pub source: NodeId,
    /// All messages.
    pub messages: Vec<ExtMessage>,
    /// Scheme name.
    pub algorithm: &'static str,
}

/// Validation error for extension schedules.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExtError {
    /// A node receives more than once.
    Duplicate(NodeId),
    /// A node never receives.
    Missed(NodeId),
    /// A sender does not hold the payload before its step.
    Causality(NodeId),
}

impl ExtSchedule {
    /// Total message-passing steps.
    pub fn steps(&self) -> u32 {
        self.messages.iter().map(|m| m.step).max().unwrap_or(0)
    }

    /// Exactly-once coverage plus sender causality over any topology.
    pub fn validate<T: Topology>(&self, topo: &T) -> Result<(), ExtError> {
        let mut got: HashMap<NodeId, u32> = HashMap::new();
        for m in &self.messages {
            for r in m.path.receivers(topo) {
                if r == self.source || got.insert(r, m.step).is_some() {
                    return Err(ExtError::Duplicate(r));
                }
            }
        }
        for n in (0..topo.num_nodes() as u32).map(NodeId) {
            if n != self.source && !got.contains_key(&n) {
                return Err(ExtError::Missed(n));
            }
        }
        for m in &self.messages {
            let s = m.path.src();
            if s != self.source && got.get(&s).is_none_or(|&g| g >= m.step) {
                return Err(ExtError::Causality(s));
            }
        }
        Ok(())
    }

    /// Zero-load latency of the schedule under the wormhole cost model:
    /// along the critical path, each step costs `Ts + hops·hop_time + L·β`
    /// with `hops` the step's longest path.
    pub fn analytic_latency(
        &self,
        startup: SimDuration,
        hop_time: SimDuration,
        flit_time: SimDuration,
        length: u64,
    ) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for step in 1..=self.steps() {
            let hops = self
                .messages
                .iter()
                .filter(|m| m.step == step)
                .map(|m| m.path.path.len() as u64)
                .max()
                .unwrap_or(0);
            total += startup + hop_time.times(hops) + flit_time.times(length);
        }
        total
    }
}

/// Ring-based coded-path broadcast on a torus: one step per dimension; in
/// step `d+1` every current holder covers its whole dimension-`d` ring with
/// a single wraparound gather-all path.
pub fn torus_ring_broadcast(torus: &Torus, source: NodeId) -> ExtSchedule {
    let mut messages = Vec::new();
    let mut holders = vec![source];
    for dim in 0..torus.ndims() {
        let k = torus.dim_size(dim);
        let mut next = Vec::with_capacity(holders.len() * k as usize);
        for &h in &holders {
            let hc = torus.coord_of(h);
            // Walk the ring in +dim direction, wrapping, covering k-1 nodes.
            let nodes: Vec<NodeId> = (0..k)
                .map(|off| torus.node_at(&hc.with(dim, (hc.get(dim) + off) % k)))
                .collect();
            next.extend(nodes.iter().copied());
            let path = Path::through(torus, &nodes);
            messages.push(ExtMessage {
                step: dim as u32 + 1,
                path: CodedPath::gather_all(torus, path),
            });
        }
        holders = next;
    }
    ExtSchedule {
        source,
        messages,
        algorithm: "torus-ring",
    }
}

/// Complete-graph broadcast on a generalized hypercube: one step per
/// dimension; each holder unicasts to every other position of its current
/// dimension (single-hop links).
pub fn ghc_broadcast(ghc: &GeneralizedHypercube, source: NodeId) -> ExtSchedule {
    let mut messages = Vec::new();
    let mut holders = vec![source];
    for dim in 0..ghc.ndims() {
        let k = ghc.dim_size(dim);
        let mut next = Vec::with_capacity(holders.len() * k as usize);
        for &h in &holders {
            let hc = ghc.coord_of(h);
            next.push(h);
            for pos in 0..k {
                if pos == hc.get(dim) {
                    continue;
                }
                let dst = ghc.node_at(&hc.with(dim, pos));
                next.push(dst);
                let path = Path::through(ghc, &[h, dst]);
                messages.push(ExtMessage {
                    step: dim as u32 + 1,
                    path: CodedPath::unicast(ghc, path),
                });
            }
        }
        holders = next;
    }
    ExtSchedule {
        source,
        messages,
        algorithm: "ghc-fan",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormcast_topology::Coord;

    #[test]
    fn torus_ring_covers_in_ndims_steps() {
        for dims in [[4u16, 4, 4], [8, 8, 8], [3, 5, 7]] {
            let t = Torus::new(&dims);
            for src in [0u32, 17] {
                let s = torus_ring_broadcast(&t, NodeId(src));
                s.validate(&t)
                    .unwrap_or_else(|e| panic!("{dims:?} src {src}: {e:?}"));
                assert_eq!(s.steps(), 3);
            }
        }
    }

    #[test]
    fn torus_2d() {
        let t = Torus::kary_ncube(6, 2);
        let s = torus_ring_broadcast(&t, NodeId(13));
        s.validate(&t).unwrap();
        assert_eq!(s.steps(), 2);
    }

    #[test]
    fn torus_ring_paths_wrap() {
        let t = Torus::kary_ncube(4, 1);
        let s = torus_ring_broadcast(&t, NodeId(2));
        assert_eq!(s.messages.len(), 1);
        let nodes = s.messages[0].path.path.nodes(&t);
        // From node 2: 2 -> 3 -> 0 -> 1 (wrapping).
        let xs: Vec<u16> = nodes.iter().map(|&n| t.coord_of(n).get(0)).collect();
        assert_eq!(xs, vec![2, 3, 0, 1]);
    }

    #[test]
    fn torus_beats_mesh_step_count() {
        // The mesh needs 4 DB steps; a torus of the same size needs 3 ring
        // steps, and its rings are one path each.
        let t = Torus::kary_ncube(8, 3);
        let s = torus_ring_broadcast(&t, NodeId(0));
        assert_eq!(s.steps(), 3);
        assert_eq!(s.messages.len(), 1 + 8 + 64);
    }

    #[test]
    fn torus_analytic_latency_is_step_structured() {
        let t = Torus::kary_ncube(8, 3);
        let s = torus_ring_broadcast(&t, NodeId(0));
        let ts = SimDuration::from_us(1.5);
        let hop = SimDuration::from_us(0.006);
        let flit = SimDuration::from_us(0.003);
        let lat = s.analytic_latency(ts, hop, flit, 100);
        // 3 steps x (1.5 + 7*0.006 + 0.3) us.
        assert_eq!(lat.as_ps(), 3 * (1_500_000 + 42_000 + 300_000));
    }

    #[test]
    fn ghc_covers_in_ndims_steps() {
        let g = GeneralizedHypercube::new(&[4, 3, 5]);
        for src in [0u32, 29] {
            let s = ghc_broadcast(&g, NodeId(src));
            s.validate(&g).unwrap();
            assert_eq!(s.steps(), 3);
            assert_eq!(s.messages.len(), g.num_nodes() - 1);
        }
    }

    #[test]
    fn ghc_binary_hypercube_is_classic_sf() {
        // On Q_n the scheme degenerates to the classic dimension-by-
        // dimension spanning-binomial-tree broadcast: n steps, 2^n - 1 msgs.
        let g = GeneralizedHypercube::binary(5);
        let s = ghc_broadcast(&g, NodeId(0));
        assert_eq!(s.steps(), 5);
        assert_eq!(s.messages.len(), 31);
        s.validate(&g).unwrap();
    }

    #[test]
    fn validator_catches_missed_nodes() {
        let t = Torus::kary_ncube(4, 2);
        let mut s = torus_ring_broadcast(&t, NodeId(0));
        s.messages.pop();
        assert!(matches!(s.validate(&t), Err(ExtError::Missed(_))));
    }

    #[test]
    fn validator_catches_duplicates() {
        let t = Torus::kary_ncube(4, 1);
        let mut s = torus_ring_broadcast(&t, NodeId(0));
        let dup = s.messages[0].clone();
        s.messages.push(dup);
        assert!(matches!(s.validate(&t), Err(ExtError::Duplicate(_))));
    }

    #[test]
    fn validator_catches_causality() {
        let t = Torus::kary_ncube(4, 2);
        // A message sent in step 1 by a node that only receives in step 2.
        let sender = t.node_at(&Coord::xy(1, 1));
        let target = t.node_at(&Coord::xy(2, 1));
        let mut s = torus_ring_broadcast(&t, NodeId(0));
        // Remove target's original delivery so the extra message is not a
        // duplicate, then add the bad-causality message.
        for m in &mut s.messages {
            if m.path.receivers(&t).contains(&target) {
                // Rebuild this ring without delivering to target.
                let nodes = m.path.path.nodes(&t);
                let receivers: Vec<NodeId> = nodes[1..]
                    .iter()
                    .copied()
                    .filter(|&n| n != target)
                    .collect();
                m.path = CodedPath::selective(&t, m.path.path.clone(), &receivers);
            }
        }
        s.messages.push(ExtMessage {
            step: 1,
            path: CodedPath::unicast(&t, Path::through(&t, &[sender, target])),
        });
        assert!(matches!(s.validate(&t), Err(ExtError::Causality(_))));
    }
}
