//! Deterministic Broadcast (DB) — Al-Dubai & Ould-Khaoua [Inf. Sci. 2004].
//!
//! DB rides on dimension-ordered routing plus **coded-path routing**: a CPR
//! message delivers to every marked node along its path in a single
//! message-passing step, so broadcast cost stops depending on the network
//! size. Following §2 of the paper, the mesh is divided into row and column
//! partitioning sets, each anchored at a corner:
//!
//! In a 3D `W×H×Z` mesh with the source in plane `zs`, the four steps are
//!
//! 1. the source sends to the two anchor corners of its own plane,
//!    `a = (0,0,zs)` and `b = (W−1,H−1,zs)`;
//! 2. each anchor disseminates along its Z **column** with gather-all coded
//!    paths, so every plane acquires its two anchor corners;
//! 3. in every plane, anchor `(0,0,z)` covers the west **edge** (column
//!    `x=0`) and anchor `(W−1,H−1,z)` the east edge (column `x=W−1`) with
//!    one gather-all path each — these are the "selected sides";
//! 4. every west-edge node covers the west half of its **row** and every
//!    east-edge node the east half ("each selected side sends the message to
//!    the opposite side in its partitioning set, covering the rest of the
//!    nodes of the system in parallel").
//!
//! Every path is a straight line (trivially dimension-ordered and
//! deadlock-free) and most destinations receive in the same (last) step,
//! which is what gives DB its low coefficient of variation at the node
//! level. In 2D the Z step disappears and DB needs 3 steps; in 3D it is the
//! paper's 4.

use crate::schedule::{BroadcastSchedule, RoutePlan, ScheduledMessage};
use wormcast_routing::{CodedPath, Path};
use wormcast_topology::{Coord, Mesh, NodeId, Topology};

/// Build the DB broadcast schedule for `source` on a 2D or 3D `mesh`.
///
/// # Panics
/// Panics if the mesh is not 2D/3D or any of the X/Y dimensions is < 2.
pub fn db_schedule(mesh: &Mesh, source: NodeId) -> BroadcastSchedule {
    assert!(
        mesh.ndims() == 2 || mesh.ndims() == 3,
        "DB is defined for 2D and 3D meshes"
    );
    assert!(
        mesh.dim_size(0) >= 2 && mesh.dim_size(1) >= 2,
        "DB needs at least a 2x2 plane"
    );
    let w = mesh.dim_size(0);
    let h = mesh.dim_size(1);
    let is3d = mesh.ndims() == 3;
    let zrange = if is3d { mesh.dim_size(2) } else { 1 };
    let src_c = mesh.coord_of(source);
    let zs = if is3d { src_c.get(2) } else { 0 };
    let at = |x: u16, y: u16, z: u16| -> Coord {
        if is3d {
            Coord::xyz(x, y, z)
        } else {
            Coord::xy(x, y)
        }
    };
    let node = |c: &Coord| mesh.node_at(c);
    let mut messages = Vec::new();

    // Anchor corners of the source plane: the corner nearest the source and
    // its diagonal opposite ("for each partitioning set, a corner node is
    // selected", §2). Source-dependent selection also spreads concurrent
    // broadcasts over the plane's two diagonal corner pairs instead of
    // funnelling every operation through one fixed pair.
    let src_plane = if is3d {
        wormcast_topology::Plane::of_3d(mesh, zs)
    } else {
        wormcast_topology::Plane::whole_2d(mesh)
    };
    let a0 = src_plane.nearest_corner(mesh, &src_c);
    let b0 = src_plane.opposite_corner(mesh, &a0);

    // Step 1: source -> anchors (straight-line DOR unicasts; skipped when the
    // source *is* that anchor).
    for corner in [a0, b0] {
        if corner != src_c {
            messages.push(ScheduledMessage {
                step: 1,
                charge_startup: true,
                plan: RoutePlan::Coded(CodedPath::unicast(
                    mesh,
                    wormcast_routing::dor_path(mesh, source, node(&corner)),
                )),
            });
        }
    }

    // Step 2 (3D only): anchors cover their Z columns with gather-all paths
    // (one per direction from the source plane).
    if is3d {
        for corner in [a0, b0] {
            for (from, to) in [(zs, zrange - 1), (zs, 0)] {
                if from == to {
                    continue;
                }
                let nodes: Vec<NodeId> = z_walk(from, to)
                    .into_iter()
                    .map(|z| node(&corner.with(2, z)))
                    .collect();
                messages.push(ScheduledMessage {
                    step: 2,
                    charge_startup: true,
                    plan: RoutePlan::Coded(CodedPath::gather_all(
                        mesh,
                        Path::through(mesh, &nodes),
                    )),
                });
            }
        }
    }

    // Step 3: per plane, each anchor covers the full edge column it sits on
    // (its "side" of the partitioning set), walking from its own row to the
    // opposite end.
    let edge_step = if is3d { 3 } else { 2 };
    for z in 0..zrange {
        for corner in [a0, b0] {
            let cx = corner.get(0);
            let ys: Vec<u16> = if corner.get(1) == 0 {
                (0..h).collect()
            } else {
                (0..h).rev().collect()
            };
            push_line(
                mesh,
                &mut messages,
                edge_step,
                ys.into_iter().map(|y| at(cx, y, z)).collect(),
                &src_c,
            );
        }
    }

    // Step 4: rows. West-edge node covers x = 1..mid-1 eastward; east-edge
    // node covers x = W-2..mid westward. Interior columns only exist when
    // W > 2.
    let row_step = edge_step + 1;
    let mid = w / 2;
    for z in 0..zrange {
        for y in 0..h {
            if mid > 1 {
                push_line(
                    mesh,
                    &mut messages,
                    row_step,
                    (0..mid).map(|x| at(x, y, z)).collect(),
                    &src_c,
                );
            }
            if w - 1 > mid {
                push_line(
                    mesh,
                    &mut messages,
                    row_step,
                    (mid..w).rev().map(|x| at(x, y, z)).collect(),
                    &src_c,
                );
            }
        }
    }

    BroadcastSchedule {
        source,
        messages,
        algorithm: "DB",
    }
}

/// Z positions from `from` to `to` inclusive, in walking order.
fn z_walk(from: u16, to: u16) -> Vec<u16> {
    if from <= to {
        (from..=to).collect()
    } else {
        (to..=from).rev().collect()
    }
}

/// Add a straight-line gather-all message over `coords` (first element is
/// the sender), delivering to every interior/final node except `skip` (the
/// broadcast source, which already holds the payload). Skips the message
/// entirely if nothing would be delivered.
fn push_line(
    mesh: &Mesh,
    messages: &mut Vec<ScheduledMessage>,
    step: u32,
    coords: Vec<Coord>,
    skip: &Coord,
) {
    if coords.len() < 2 {
        return;
    }
    let nodes: Vec<NodeId> = coords.iter().map(|c| mesh.node_at(c)).collect();
    let receivers: Vec<NodeId> = coords[1..]
        .iter()
        .filter(|c| *c != skip)
        .map(|c| mesh.node_at(c))
        .collect();
    if receivers.is_empty() {
        return;
    }
    // Trim the path if trailing nodes do not receive (keeps channel demand
    // honest when the source sits at the end of a line).
    let last_rx = *receivers.last().unwrap();
    let end = nodes.iter().position(|&n| n == last_rx).unwrap();
    let path = Path::through(mesh, &nodes[..=end]);
    messages.push(ScheduledMessage::step_message(
        step,
        RoutePlan::Coded(CodedPath::selective(mesh, path, &receivers)),
    ));
}

/// DB's step count: 4 in 3D, 3 in 2D — independent of network size, the
/// property Fig. 1 turns on.
pub fn db_steps(mesh: &Mesh) -> u32 {
    if mesh.ndims() == 3 {
        4
    } else {
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_cube_from_any_source_class() {
        let m = Mesh::cube(4);
        // Interior, corner, edge, column and row-end sources.
        for src in [
            Coord::xyz(1, 1, 1),
            Coord::xyz(0, 0, 0),
            Coord::xyz(3, 3, 3),
            Coord::xyz(0, 2, 1),
            Coord::xyz(3, 0, 2),
            Coord::xyz(2, 3, 0),
            Coord::xyz(0, 0, 2),
        ] {
            let s = db_schedule(&m, m.node_at(&src));
            s.validate(&m, 2)
                .unwrap_or_else(|e| panic!("source {src}: {e:?}"));
            assert_eq!(s.steps(), 4);
        }
    }

    #[test]
    fn exhaustive_sources_on_small_cube() {
        let m = Mesh::cube(4);
        for n in 0..m.num_nodes() as u32 {
            db_schedule(&m, NodeId(n)).validate(&m, 2).unwrap();
        }
    }

    #[test]
    fn step_count_is_constant_in_network_size() {
        for side in [4u16, 8, 16] {
            let m = Mesh::cube(side);
            let s = db_schedule(&m, NodeId(7));
            assert_eq!(s.steps(), 4, "side {side}");
            s.validate(&m, 2).unwrap();
        }
        let m = Mesh::new(&[16, 16, 8]);
        assert_eq!(db_schedule(&m, NodeId(0)).steps(), 4);
    }

    #[test]
    fn works_on_rectangular_meshes() {
        for dims in [[4u16, 4, 16], [8, 8, 16], [16, 16, 8], [10, 10, 10]] {
            let m = Mesh::new(&dims);
            for src in (0..m.num_nodes() as u32).step_by(97) {
                db_schedule(&m, NodeId(src))
                    .validate(&m, 2)
                    .unwrap_or_else(|e| panic!("{dims:?} src {src}: {e:?}"));
            }
        }
    }

    #[test]
    fn two_d_takes_three_steps() {
        let m = Mesh::square(8);
        for src in (0..64u32).step_by(13) {
            let s = db_schedule(&m, NodeId(src));
            s.validate(&m, 2).unwrap();
            assert_eq!(s.steps(), 3);
        }
    }

    #[test]
    fn all_paths_are_straight_lines() {
        let m = Mesh::cube(8);
        let s = db_schedule(&m, NodeId(100));
        for msg in &s.messages {
            let RoutePlan::Coded(cp) = &msg.plan else {
                panic!("DB uses fixed paths");
            };
            if msg.step == 1 {
                // Corner legs are DOR L-shaped paths.
                assert!(wormcast_routing::is_dor_legal(&m, &cp.path));
                continue;
            }
            let nodes = cp.path.nodes(&m);
            let a = m.coord_of(nodes[0]);
            let b = m.coord_of(*nodes.last().unwrap());
            assert!(
                a.hamming(&b) <= 1,
                "step {} path should be a straight line",
                msg.step
            );
        }
    }

    #[test]
    fn message_count_scales_with_rows_not_nodes() {
        // DB: ≤2 corner legs + ≤4 column paths + 2·Z edges + ≤2·Z·H rows.
        let m = Mesh::cube(8);
        let s = db_schedule(&m, NodeId(0));
        let upper = 2 + 4 + 2 * 8 + 2 * 8 * 8;
        assert!(s.num_messages() <= upper);
        assert!(
            s.num_messages() < m.num_nodes() - 1,
            "far fewer messages than unicast-based algorithms"
        );
    }

    #[test]
    fn most_nodes_receive_in_the_last_step() {
        let m = Mesh::cube(8);
        let s = db_schedule(&m, NodeId(77));
        let mut by_step = vec![0usize; 5];
        for msg in &s.messages {
            let RoutePlan::Coded(cp) = &msg.plan else {
                unreachable!()
            };
            by_step[msg.step as usize] += cp.num_receivers();
        }
        let total: usize = by_step.iter().sum();
        assert_eq!(total, m.num_nodes() - 1);
        assert!(
            by_step[4] * 2 > total,
            "the row step should deliver the majority: {by_step:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least a 2x2")]
    fn degenerate_mesh_rejected() {
        let m = Mesh::new(&[1, 4, 4]);
        let _ = db_schedule(&m, NodeId(0));
    }
}
