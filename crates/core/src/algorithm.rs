//! The five broadcast algorithms behind one dispatching enum.

use crate::ab::{ab_schedule, ab_steps};
use crate::db::{db_schedule, db_steps};
use crate::edn::{edn_schedule, edn_steps};
use crate::qab::{qab_schedule, qab_steps};
use crate::rd::{rd_schedule, rd_steps};
use crate::schedule::BroadcastSchedule;
use serde::{Deserialize, Serialize};
use wormcast_topology::{Mesh, NodeId};

/// Which routing substrate an algorithm's messages assume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingKind {
    /// Deterministic dimension-ordered routing (RD, EDN, DB).
    DimensionOrdered,
    /// Turn-model adaptive routing: west-first in 2D, Z-then-west-first in
    /// 3D (AB).
    WestFirstAdaptive,
    /// Queue-aware adaptive routing: negative-first candidates arbitrated by
    /// local backlog with channel-index tie-breaks (QAB).
    QueueAdaptive,
}

/// The paper's four broadcast algorithms plus this reproduction's
/// queue-aware extension.
///
/// # Examples
///
/// ```
/// use wormcast_broadcast::Algorithm;
/// use wormcast_topology::{Mesh, NodeId};
///
/// let mesh = Mesh::cube(8);
/// let schedule = Algorithm::Db.schedule(&mesh, NodeId(0));
/// schedule.validate(&mesh, Algorithm::Db.ports()).unwrap();
/// assert_eq!(schedule.steps(), 4); // constant, whatever the network size
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Recursive Doubling [Barnett et al. 1996].
    Rd,
    /// Extended Dominating Node [Tsai & McKinley 1997].
    Edn,
    /// Deterministic Broadcast on coded-path routing [Al-Dubai &
    /// Ould-Khaoua 2004] — one of the paper's two proposed algorithms.
    Db,
    /// Adaptive Broadcast on coded-path + west-first routing [Al-Dubai,
    /// Ould-Khaoua & Mackenzie 2003] — the other proposed algorithm.
    Ab,
    /// Queue-aware Adaptive Broadcast — this reproduction's backlog-driven
    /// extension in the spirit of Sinha–Paschos–Modiano backpressure
    /// broadcast (arXiv:1604.00446): AB's three-step corner/serpentine
    /// skeleton with every adaptive leg steered toward the
    /// least-backlogged productive channel over negative-first candidates,
    /// and negative-first detours under faults.
    Qab,
}

impl Algorithm {
    /// All five: the paper's four in presentation order, then QAB.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::Rd,
        Algorithm::Edn,
        Algorithm::Db,
        Algorithm::Ab,
        Algorithm::Qab,
    ];

    /// The paper's original four, in presentation order — the set the
    /// figure-reproduction drivers sweep.
    pub const PAPER: [Algorithm; 4] = [Algorithm::Rd, Algorithm::Edn, Algorithm::Db, Algorithm::Ab];

    /// The paper's abbreviation.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Rd => "RD",
            Algorithm::Edn => "EDN",
            Algorithm::Db => "DB",
            Algorithm::Ab => "AB",
            Algorithm::Qab => "QAB",
        }
    }

    /// Build the broadcast schedule for `source`.
    pub fn schedule(self, mesh: &Mesh, source: NodeId) -> BroadcastSchedule {
        match self {
            Algorithm::Rd => rd_schedule(mesh, source),
            Algorithm::Edn => edn_schedule(mesh, source),
            Algorithm::Db => db_schedule(mesh, source),
            Algorithm::Ab => ab_schedule(mesh, source),
            Algorithm::Qab => qab_schedule(mesh, source),
        }
    }

    /// The algorithm's analytical message-passing step count on `mesh`.
    pub fn theoretical_steps(self, mesh: &Mesh) -> u32 {
        match self {
            Algorithm::Rd => rd_steps(mesh),
            Algorithm::Edn => edn_steps(mesh),
            Algorithm::Db => db_steps(mesh),
            Algorithm::Ab => ab_steps(mesh),
            Algorithm::Qab => qab_steps(mesh),
        }
    }

    /// Injection ports the algorithm's router model assumes: RD gains
    /// nothing from multiport (one send per step, §2), EDN is defined on a
    /// three-port router (§2), and the CPR router underneath DB and AB
    /// replicates and forwards messages on all ports (one per direction of a
    /// 3D mesh), so concurrent relay duties at the fixed corner/edge anchors
    /// do not serialise behind each other. QAB splits six ways so each
    /// relay duty gets its own port.
    pub fn ports(self) -> usize {
        match self {
            Algorithm::Rd => 1,
            Algorithm::Edn => 3,
            Algorithm::Db => 6,
            Algorithm::Ab => 6,
            Algorithm::Qab => 6,
        }
    }

    /// The routing substrate the algorithm rides on.
    pub fn routing(self) -> RoutingKind {
        match self {
            Algorithm::Ab => RoutingKind::WestFirstAdaptive,
            Algorithm::Qab => RoutingKind::QueueAdaptive,
            _ => RoutingKind::DimensionOrdered,
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "RD" => Ok(Algorithm::Rd),
            "EDN" => Ok(Algorithm::Edn),
            "DB" => Ok(Algorithm::Db),
            "AB" => Ok(Algorithm::Ab),
            "QAB" => Ok(Algorithm::Qab),
            other => Err(format!(
                "unknown algorithm '{other}' (RD, EDN, DB, AB, QAB)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_algorithms_cover_all_sizes() {
        for dims in [[4u16, 4, 4], [8, 8, 8], [4, 4, 16]] {
            let m = Mesh::new(&dims);
            for alg in Algorithm::ALL {
                let s = alg.schedule(&m, NodeId(5));
                s.validate(&m, alg.ports())
                    .unwrap_or_else(|e| panic!("{alg} on {dims:?}: {e:?}"));
                assert_eq!(s.steps(), alg.theoretical_steps(&m), "{alg} {dims:?}");
            }
        }
    }

    #[test]
    fn paper_step_comparison_3d() {
        // §2: AB=3, DB=4, EDN=k+m+4, RD=log2 N. On 8x8x8: 3 < 4 < 6 < 9.
        let m = Mesh::cube(8);
        assert_eq!(Algorithm::Ab.theoretical_steps(&m), 3);
        assert_eq!(Algorithm::Db.theoretical_steps(&m), 4);
        assert_eq!(Algorithm::Edn.theoretical_steps(&m), 6);
        assert_eq!(Algorithm::Rd.theoretical_steps(&m), 9);
    }

    #[test]
    fn names_and_parsing_roundtrip() {
        for alg in Algorithm::ALL {
            assert_eq!(alg.name().parse::<Algorithm>().unwrap(), alg);
            assert_eq!(format!("{alg}"), alg.name());
        }
        assert!("XYZ".parse::<Algorithm>().is_err());
        assert_eq!("db".parse::<Algorithm>().unwrap(), Algorithm::Db);
    }

    #[test]
    fn routing_kinds() {
        assert_eq!(Algorithm::Ab.routing(), RoutingKind::WestFirstAdaptive);
        assert_eq!(Algorithm::Qab.routing(), RoutingKind::QueueAdaptive);
        for alg in [Algorithm::Rd, Algorithm::Edn, Algorithm::Db] {
            assert_eq!(alg.routing(), RoutingKind::DimensionOrdered);
        }
    }

    #[test]
    fn paper_subset_excludes_qab() {
        assert!(!Algorithm::PAPER.contains(&Algorithm::Qab));
        assert!(Algorithm::ALL.ends_with(&[Algorithm::Qab]));
        assert_eq!(Algorithm::ALL[..4], Algorithm::PAPER);
    }
}
