//! Adaptive Broadcast (AB) — Al-Dubai, Ould-Khaoua & Mackenzie [PDP 2003].
//!
//! AB combines CPR with **turn-model adaptive routing** (west-first, §2) and
//! completes a broadcast in only three message-passing steps by treating the
//! 3D mesh as a stack of 2D planes:
//!
//! 1. from the source, the message is routed (adaptively) to the **nearest
//!    corner** of the source's plane and to the **opposite corner** — header
//!    control field `10`;
//! 2. each of the two corners relays the message to the corresponding
//!    corners of every other plane — a gather-all coded path straight along
//!    Z, control field `11` — so every plane receives the message "via two
//!    corners in parallel";
//! 3. every plane is divided in half and each corner disseminates the
//!    message over its half with a single **serpentine** coded path covering
//!    all remaining nodes.
//!
//! The serpentine is what the paper means by AB "using longer paths in its
//! third step": one path of ~W·H/2 hops per half-plane. That single long
//! path is the root of both AB phenomena the paper reports — the arrival
//! spread (CV) growing with network size faster than DB's, and the extra
//! channel load that erodes AB's throughput advantage on 16×16×8 (Fig. 4).
//!
//! In 2D the plane-relay step collapses into a corner-to-corner leg, keeping
//! the three-step structure ("only three message passing steps in 2D", §2).

use crate::schedule::{BroadcastSchedule, RoutePlan, ScheduledMessage};
use wormcast_routing::{CodedPath, Path};
use wormcast_topology::{Coord, Mesh, NodeId, Plane, Topology};

/// How a serpentine's row-to-row turn hops are segmented, which decides
/// which turn model the coded segments conform to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SerpentineStyle {
    /// AB: each segment is a row sweep plus the trailing turn hop
    /// (E…EN / W…WN / E…ES / W…WS) — west-first conformable, since any
    /// west hops come first within a segment.
    WestFirst,
    /// QAB: on descending serpentines the turn hop *leads* the next
    /// segment (S,E…E / S,W…W) instead of trailing the previous one, so
    /// every segment does all its negative hops before any positive hop —
    /// negative-first conformable. Ascending serpentines keep the trailing
    /// turn (W…WN is already negative-before-positive).
    NegativeFirst,
}

/// Build the AB broadcast schedule for `source` on a 2D or 3D `mesh`.
///
/// # Panics
/// Panics if the mesh is not 2D/3D or any of the X/Y dimensions is < 2.
pub fn ab_schedule(mesh: &Mesh, source: NodeId) -> BroadcastSchedule {
    corner_plane_schedule(mesh, source, SerpentineStyle::WestFirst, "AB")
}

/// The corner/plane-relay/serpentine skeleton shared by AB and QAB: three
/// message-passing steps whose only structural degree of freedom is the
/// serpentine segmentation (`style`).
pub(crate) fn corner_plane_schedule(
    mesh: &Mesh,
    source: NodeId,
    style: SerpentineStyle,
    label: &'static str,
) -> BroadcastSchedule {
    assert!(
        mesh.ndims() == 2 || mesh.ndims() == 3,
        "AB is defined for 2D and 3D meshes"
    );
    assert!(
        mesh.dim_size(0) >= 2 && mesh.dim_size(1) >= 2,
        "AB needs at least a 2x2 plane"
    );
    let is3d = mesh.ndims() == 3;
    let src_c = mesh.coord_of(source);
    let zs = if is3d { src_c.get(2) } else { 0 };
    let zrange = if is3d { mesh.dim_size(2) } else { 1 };
    let src_plane = plane_at(mesh, zs);
    let mut messages = Vec::new();

    // The two anchor corners of the source plane: nearest to the source and
    // its diagonal opposite.
    let near = src_plane.nearest_corner(mesh, &src_c);
    let far = src_plane.opposite_corner(mesh, &near);

    // Step 1: source -> both corners, adaptively routed (control 10). In 2D
    // the paper's three-step structure routes source -> nearest corner in
    // step 1 and nearest -> opposite corner in step 2.
    if is3d {
        for corner in [near, far] {
            if corner != src_c {
                messages.push(ScheduledMessage {
                    step: 1,
                    charge_startup: true,
                    plan: RoutePlan::Adaptive {
                        src: source,
                        dst: mesh.node_at(&corner),
                    },
                });
            }
        }
    } else {
        if near != src_c {
            messages.push(ScheduledMessage {
                step: 1,
                charge_startup: true,
                plan: RoutePlan::Adaptive {
                    src: source,
                    dst: mesh.node_at(&near),
                },
            });
        }
        messages.push(ScheduledMessage {
            step: 2,
            charge_startup: true,
            plan: RoutePlan::Adaptive {
                src: mesh.node_at(&near),
                dst: mesh.node_at(&far),
            },
        });
    }

    // Step 2 (3D): corners relay along Z to the corresponding corners of
    // every other plane (control 11), one gather-all path per direction.
    if is3d {
        for corner in [near, far] {
            for to in [zrange - 1, 0] {
                if to == zs {
                    continue;
                }
                let zwalk: Vec<u16> = if zs <= to {
                    (zs..=to).collect()
                } else {
                    (to..=zs).rev().collect()
                };
                if zwalk.len() < 2 {
                    continue;
                }
                let nodes: Vec<NodeId> = zwalk
                    .into_iter()
                    .map(|z| mesh.node_at(&corner.with(2, z)))
                    .collect();
                messages.push(ScheduledMessage {
                    step: 2,
                    charge_startup: true,
                    plan: RoutePlan::Coded(CodedPath::gather_all(
                        mesh,
                        Path::through(mesh, &nodes),
                    )),
                });
            }
        }
    }

    // Step 3: per plane, each corner covers its half with a serpentine.
    // The halves split along Y; a corner owns the half containing its own
    // row.
    let serp_step = 3;
    let h = mesh.dim_size(1);
    let hm = h / 2;
    for z in 0..zrange {
        let plane = plane_at(mesh, z);
        for corner0 in [near, far] {
            let corner = if is3d { corner0.with(2, z) } else { corner0 };
            let rows: Vec<u16> = if corner.get(1) < hm {
                (0..hm).collect()
            } else {
                (hm..h).rev().collect()
            };
            push_serpentine(
                mesh,
                &mut messages,
                serp_step,
                &plane,
                &corner,
                &rows,
                &src_c,
                style,
            );
        }
    }

    compress_steps(&mut messages);
    BroadcastSchedule {
        source,
        messages,
        algorithm: label,
    }
}

/// Remap step numbers to be contiguous from 1 (a corner source can make the
/// first corner leg vanish).
fn compress_steps(messages: &mut [ScheduledMessage]) {
    let used: std::collections::BTreeSet<u32> = messages.iter().map(|m| m.step).collect();
    let map: std::collections::HashMap<u32, u32> = used
        .into_iter()
        .enumerate()
        .map(|(i, s)| (s, i as u32 + 1))
        .collect();
    for m in messages.iter_mut() {
        m.step = map[&m.step];
    }
}

fn plane_at(mesh: &Mesh, z: u16) -> Plane {
    if mesh.ndims() == 3 {
        Plane::of_3d(mesh, z)
    } else {
        Plane::whole_2d(mesh)
    }
}

/// Add the serpentine dissemination for one half-plane as a **chain of
/// coded-path segments**: each segment is one row sweep plus the single
/// vertical hop onto the next row, relayed onward by the turn node without a
/// fresh start-up (CPR absorb-and-forward), so the whole serpentine counts
/// as one message-passing step. Segmenting matters for deadlock freedom: a
/// row-plus-turn segment conforms to west-first routing (E…EN or W…WN), so
/// AB's traffic keeps the channel-dependency graph acyclic, whereas one
/// monolithic snake path would take the prohibited N→W turn. The
/// [`SerpentineStyle::NegativeFirst`] variant walks the identical node
/// sequence but cuts descending serpentines *before* each turn hop, so the
/// hop leads its segment and every segment stays negative-before-positive.
#[allow(clippy::too_many_arguments)] // internal builder shared by AB/QAB
fn push_serpentine(
    mesh: &Mesh,
    messages: &mut Vec<ScheduledMessage>,
    step: u32,
    plane: &Plane,
    corner: &Coord,
    rows: &[u16],
    src_c: &Coord,
    style: SerpentineStyle,
) {
    let w = mesh.dim_size(0);
    let descending = rows.len() > 1 && rows[1] < rows[0];
    let turn_leads = style == SerpentineStyle::NegativeFirst && descending;
    let mut left_to_right = corner.get(0) == 0;
    for (ri, &y) in rows.iter().enumerate() {
        let mut coords: Vec<Coord> = Vec::with_capacity(w as usize + 1);
        let xs: Vec<u16> = if left_to_right {
            (0..w).collect()
        } else {
            (0..w).rev().collect()
        };
        // A leading turn hop enters this row from where the previous sweep
        // ended (S,E…E / S,W…W — negative-first legal).
        if turn_leads && ri > 0 {
            coords.push(plane.at(xs[0], rows[ri - 1]));
        }
        for x in &xs {
            coords.push(plane.at(*x, y));
        }
        // The trailing turn hop onto the next row (E…EN / W…WN — west-first
        // legal).
        if !turn_leads {
            if let Some(&next_y) = rows.get(ri + 1) {
                coords.push(plane.at(*xs.last().unwrap(), next_y));
            }
        }
        if ri == 0 {
            debug_assert_eq!(coords[0], *corner, "serpentine starts at its corner");
        }
        let nodes: Vec<NodeId> = coords.iter().map(|c| mesh.node_at(c)).collect();
        let receivers: Vec<NodeId> = coords[1..]
            .iter()
            .filter(|c| *c != src_c)
            .map(|c| mesh.node_at(c))
            .collect();
        left_to_right = !left_to_right;
        if receivers.is_empty() {
            continue;
        }
        let plan = RoutePlan::Coded(CodedPath::selective(
            mesh,
            Path::through(mesh, &nodes),
            &receivers,
        ));
        messages.push(if ri == 0 {
            ScheduledMessage::step_message(step, plan)
        } else {
            ScheduledMessage::continuation(step, plan)
        });
    }
}

/// AB's step count: 3, independent of network size (§2).
pub fn ab_steps(_mesh: &Mesh) -> u32 {
    3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::RoutePlan;

    #[test]
    fn covers_cube_from_source_classes() {
        let m = Mesh::cube(4);
        for src in [
            Coord::xyz(1, 1, 1),
            Coord::xyz(0, 0, 0),
            Coord::xyz(3, 3, 3),
            Coord::xyz(3, 0, 2),
            Coord::xyz(0, 3, 1),
            Coord::xyz(2, 2, 0),
        ] {
            let s = ab_schedule(&m, m.node_at(&src));
            s.validate(&m, 2)
                .unwrap_or_else(|e| panic!("source {src}: {e:?}"));
            assert_eq!(s.steps(), 3);
        }
    }

    #[test]
    fn exhaustive_sources_on_small_cube() {
        let m = Mesh::cube(4);
        for n in 0..m.num_nodes() as u32 {
            ab_schedule(&m, NodeId(n)).validate(&m, 2).unwrap();
        }
    }

    #[test]
    fn three_steps_at_every_size() {
        for dims in [[4u16, 4, 4], [8, 8, 8], [16, 16, 8], [10, 10, 10]] {
            let m = Mesh::new(&dims);
            let s = ab_schedule(&m, NodeId(1));
            s.validate(&m, 2).unwrap();
            assert_eq!(s.steps(), 3, "{dims:?}");
        }
    }

    #[test]
    fn rectangular_meshes_with_many_sources() {
        for dims in [[4u16, 4, 16], [8, 8, 16]] {
            let m = Mesh::new(&dims);
            for src in (0..m.num_nodes() as u32).step_by(61) {
                ab_schedule(&m, NodeId(src))
                    .validate(&m, 2)
                    .unwrap_or_else(|e| panic!("{dims:?} src {src}: {e:?}"));
            }
        }
    }

    #[test]
    fn two_d_mesh_three_steps() {
        let m = Mesh::square(8);
        for src in (0..64u32).step_by(11) {
            let s = ab_schedule(&m, NodeId(src));
            s.validate(&m, 2).unwrap();
            // 2D keeps the paper's three-step structure: source -> nearest
            // corner, nearest -> opposite, then the two serpentines. A
            // corner source collapses the first leg.
            let c = m.coord_of(NodeId(src));
            let is_corner = (c.get(0) == 0 || c.get(0) == 7) && (c.get(1) == 0 || c.get(1) == 7);
            assert_eq!(s.steps(), if is_corner { 2 } else { 3 });
        }
    }

    #[test]
    fn step1_is_adaptive_step3_is_coded() {
        let m = Mesh::cube(8);
        let s = ab_schedule(&m, NodeId(100));
        for msg in &s.messages {
            match (msg.step, &msg.plan) {
                (1, RoutePlan::Adaptive { .. }) => {}
                (2 | 3, RoutePlan::Coded(_)) => {}
                other => panic!("unexpected plan shape: step {}", other.0),
            }
        }
    }

    #[test]
    fn serpentine_chains_are_much_longer_than_db_paths() {
        let m = Mesh::new(&[16, 16, 8]);
        let ab = ab_schedule(&m, NodeId(0));
        let db = crate::db::db_schedule(&m, NodeId(0));
        // AB's step-3 serpentine chain walks every node of each half-plane:
        // its total step-3 channel demand is ~N, far above DB's row step,
        // and each plane is covered by just two chains of ~W·H/2 hops.
        let ab_step3: usize = ab
            .messages
            .iter()
            .filter(|msg| msg.step == 3)
            .map(|msg| match &msg.plan {
                RoutePlan::Coded(cp) => cp.path.len(),
                _ => 0,
            })
            .sum();
        assert!(ab_step3 >= 8 * (16 * 16 - 4), "serpentines walk the planes");
        // Each individual segment stays west-first conformable (one row + a
        // turn hop).
        for msg in ab.messages.iter().filter(|m2| m2.step == 3) {
            let RoutePlan::Coded(cp) = &msg.plan else {
                panic!()
            };
            assert!(cp.path.len() <= 17, "segment = row + turn hop");
        }
        // DB's longest path is a corner leg (<= (W-1)+(H-1) hops) or a
        // column/edge line -- never a half-plane walk.
        assert!(db.max_path_len(&m) <= 30);
    }

    #[test]
    fn far_fewer_messages_than_unicast_algorithms() {
        let m = Mesh::cube(8);
        let ab = ab_schedule(&m, NodeId(0));
        // 2 corner legs + ≤4 Z relays + 2 chains of H/2 segments per plane.
        assert!(ab.num_messages() <= 2 + 4 + 2 * 8 * 4);
        let rd = crate::rd::rd_schedule(&m, NodeId(0));
        assert!(ab.num_messages() * 5 < rd.num_messages());
    }

    #[test]
    fn nearest_corner_is_used() {
        let m = Mesh::cube(8);
        // Source near the (7,7) corner of plane 3.
        let src = m.node_at(&Coord::xyz(6, 7, 3));
        let s = ab_schedule(&m, src);
        let corners: Vec<Coord> = s
            .messages
            .iter()
            .filter(|msg| msg.step == 1)
            .map(|msg| match &msg.plan {
                RoutePlan::Adaptive { dst, .. } => m.coord_of(*dst),
                _ => panic!(),
            })
            .collect();
        assert!(corners.contains(&Coord::xyz(7, 7, 3)));
        assert!(corners.contains(&Coord::xyz(0, 0, 3)));
    }
}
