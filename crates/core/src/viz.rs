//! ASCII visualisation of broadcast schedules — which nodes hold the payload
//! after each message-passing step, plane by plane. Used by the docs and
//! invaluable when writing a new schedule constructor.
//!
//! Legend: `S` source, `#` covered in an earlier step, `*` newly covered in
//! the rendered step, `.` not yet covered.

use crate::schedule::BroadcastSchedule;
use std::collections::HashMap;
use wormcast_topology::{Mesh, NodeId, Topology};

/// Render the coverage state after `step` (1-based).
///
/// # Panics
/// Panics if the mesh is not 2D/3D or the step exceeds the schedule's.
pub fn render_step(mesh: &Mesh, schedule: &BroadcastSchedule, step: u32) -> String {
    assert!(
        mesh.ndims() == 2 || mesh.ndims() == 3,
        "viz supports 2D/3D meshes"
    );
    assert!(step >= 1 && step <= schedule.steps(), "step out of range");
    let covered = coverage_steps(mesh, schedule);
    let (w, h) = (mesh.dim_size(0), mesh.dim_size(1));
    let zrange = if mesh.ndims() == 3 {
        mesh.dim_size(2)
    } else {
        1
    };
    let mut out = String::new();
    out.push_str(&format!(
        "{} after step {step}/{} (source {}):\n",
        schedule.algorithm,
        schedule.steps(),
        schedule.source
    ));
    for z in 0..zrange {
        if mesh.ndims() == 3 {
            out.push_str(&format!("z={z}\n"));
        }
        // Row h-1 at the top so +Y points up, as in the paper's diagrams.
        for y in (0..h).rev() {
            out.push_str("  ");
            for x in 0..w {
                let axes: &[u16] = if mesh.ndims() == 3 {
                    &[x, y, z]
                } else {
                    &[x, y]
                };
                let n = mesh.node_at(&wormcast_topology::Coord::new(axes));
                let ch = if n == schedule.source {
                    'S'
                } else {
                    match covered.get(&n) {
                        Some(&s) if s < step => '#',
                        Some(&s) if s == step => '*',
                        _ => '.',
                    }
                };
                out.push(ch);
                out.push(' ');
            }
            out.push('\n');
        }
    }
    out
}

/// Render every step in sequence.
pub fn render_all(mesh: &Mesh, schedule: &BroadcastSchedule) -> String {
    (1..=schedule.steps())
        .map(|s| render_step(mesh, schedule, s))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Map each covered node to the step in which it receives.
fn coverage_steps(mesh: &Mesh, schedule: &BroadcastSchedule) -> HashMap<NodeId, u32> {
    let mut covered = HashMap::new();
    for m in &schedule.messages {
        for r in m.plan.receivers(mesh) {
            let e = covered.entry(r).or_insert(m.step);
            *e = (*e).min(m.step);
        }
    }
    covered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Algorithm;
    use wormcast_topology::Coord;

    #[test]
    fn db_2d_step_progression_golden() {
        let mesh = Mesh::square(4);
        let src = mesh.node_at(&Coord::xy(1, 1));
        let s = Algorithm::Db.schedule(&mesh, src);
        // Step 1: the two anchor corners (source is at (1,1), nearest corner
        // (0,0), opposite (3,3)).
        let step1 = render_step(&mesh, &s, 1);
        assert!(step1.contains("DB after step 1/3"));
        let grid1: Vec<&str> = step1.lines().skip(1).collect();
        assert_eq!(grid1[0].trim(), ". . . *"); // y=3: corner (3,3)
        assert_eq!(grid1[2].trim(), ". S . ."); // y=1: source
        assert_eq!(grid1[3].trim(), "* . . ."); // y=0: corner (0,0)
                                                // Final step covers everyone.
        let last = render_step(&mesh, &s, s.steps());
        assert!(!last.contains('.'), "no uncovered nodes remain:\n{last}");
    }

    #[test]
    fn coverage_is_monotone() {
        let mesh = Mesh::cube(4);
        let s = Algorithm::Ab.schedule(&mesh, NodeId(37));
        let mut covered_counts = Vec::new();
        for step in 1..=s.steps() {
            let r = render_step(&mesh, &s, step);
            let newly = r.chars().filter(|&c| c == '*').count();
            let old = r.chars().filter(|&c| c == '#').count();
            covered_counts.push(old + newly);
        }
        assert!(
            covered_counts.windows(2).all(|w| w[0] <= w[1]),
            "coverage only grows: {covered_counts:?}"
        );
        assert_eq!(*covered_counts.last().unwrap(), 63);
    }

    #[test]
    fn render_all_contains_every_step() {
        let mesh = Mesh::square(4);
        let s = Algorithm::Rd.schedule(&mesh, NodeId(0));
        let all = render_all(&mesh, &s);
        for step in 1..=s.steps() {
            assert!(all.contains(&format!("after step {step}/")));
        }
    }

    #[test]
    #[should_panic(expected = "step out of range")]
    fn step_bounds_checked() {
        let mesh = Mesh::square(4);
        let s = Algorithm::Rd.schedule(&mesh, NodeId(0));
        let _ = render_step(&mesh, &s, 99);
    }

    #[test]
    fn three_d_planes_labelled() {
        let mesh = Mesh::cube(4);
        let s = Algorithm::Db.schedule(&mesh, NodeId(0));
        let r = render_step(&mesh, &s, 1);
        for z in 0..4 {
            assert!(r.contains(&format!("z={z}\n")));
        }
    }
}
