//! Recursive Doubling (RD) — Barnett, David, van de Geijn & Watts [JPDC'96].
//!
//! The classic ⌈log₂N⌉-step broadcast: every node holding a copy is
//! responsible for a sub-box of the mesh; each step it halves its box along
//! the longest dimension and sends to the node at the *same relative
//! position* in the other half (a straight-line, dimension-ordered unicast,
//! which is what lets RD exploit wormhole pipelining in the absence of
//! contention). The recursion bottoms out when every box is a single node.
//!
//! RD sends exactly one message per holder per step, so it gains nothing
//! from a multiport router — the limitation EDN was designed to lift (§2 of
//! the paper).

use crate::schedule::{BroadcastSchedule, RoutePlan, ScheduledMessage};
use wormcast_routing::{dor_path, CodedPath};
use wormcast_topology::{Coord, Mesh, NodeId, Topology};

/// Per-dimension half-open ranges describing a sub-box of the mesh.
#[derive(Debug, Clone)]
struct SubBox {
    lo: Vec<u16>,
    hi: Vec<u16>,
}

impl SubBox {
    fn whole(mesh: &Mesh) -> SubBox {
        SubBox {
            lo: vec![0; mesh.ndims()],
            hi: mesh.dims().to_vec(),
        }
    }

    fn extent(&self, d: usize) -> u16 {
        self.hi[d] - self.lo[d]
    }

    fn is_unit(&self) -> bool {
        self.lo.iter().zip(&self.hi).all(|(&l, &h)| h - l == 1)
    }

    /// The dimension with the largest extent (lowest index on ties).
    fn longest_dim(&self) -> usize {
        (0..self.lo.len())
            .max_by_key(|&d| (self.extent(d), std::cmp::Reverse(d)))
            .expect("boxes have dimensions")
    }
}

/// Build the RD broadcast schedule for `source` on `mesh`.
pub fn rd_schedule(mesh: &Mesh, source: NodeId) -> BroadcastSchedule {
    let mut messages = Vec::new();
    let holder = mesh.coord_of(source);
    recurse(mesh, &SubBox::whole(mesh), holder, 1, &mut messages);
    BroadcastSchedule {
        source,
        messages,
        algorithm: "RD",
    }
}

fn recurse(mesh: &Mesh, bbox: &SubBox, holder: Coord, step: u32, out: &mut Vec<ScheduledMessage>) {
    if bbox.is_unit() {
        return;
    }
    let d = bbox.longest_dim();
    let ext = bbox.extent(d);
    let mid = bbox.lo[d] + ext / 2;
    // Lower half [lo, mid), upper half [mid, hi).
    let (mut lower, mut upper) = (bbox.clone(), bbox.clone());
    lower.hi[d] = mid;
    upper.lo[d] = mid;
    let pos = holder.get(d);
    let (own, other) = if pos < mid {
        (&lower, &upper)
    } else {
        (&upper, &lower)
    };
    // Partner: same relative position in the other half, clamped for odd
    // extents.
    let rel = pos - own.lo[d];
    let partner_pos = other.lo[d] + rel.min(other.extent(d) - 1);
    let partner = holder.with(d, partner_pos);
    let src = mesh.node_at(&holder);
    let dst = mesh.node_at(&partner);
    out.push(ScheduledMessage::step_message(
        step,
        RoutePlan::Coded(CodedPath::unicast(mesh, dor_path(mesh, src, dst))),
    ));
    recurse(mesh, own, holder, step + 1, out);
    recurse(mesh, other, partner, step + 1, out);
}

/// RD's step count: the recursion depth, `Σ_d ⌈log₂ extent_d⌉` — which is
/// `log₂ N` for power-of-two meshes (the paper's formula).
pub fn rd_steps(mesh: &Mesh) -> u32 {
    mesh.dims()
        .iter()
        .map(|&e| (e as f64).log2().ceil() as u32)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_cube_exactly_once() {
        let m = Mesh::cube(4);
        for src in [0u32, 21, 63] {
            let s = rd_schedule(&m, NodeId(src));
            s.validate(&m, 1).expect("RD schedule valid with one port");
        }
    }

    #[test]
    fn step_count_is_log2_n() {
        assert_eq!(rd_steps(&Mesh::cube(4)), 6); // log2(64)
        assert_eq!(rd_steps(&Mesh::cube(8)), 9); // log2(512)
        assert_eq!(rd_steps(&Mesh::cube(16)), 12); // log2(4096)
        assert_eq!(rd_steps(&Mesh::new(&[4, 4, 16])), 8); // log2(256)
        assert_eq!(rd_steps(&Mesh::new(&[8, 8, 16])), 10); // log2(1024)
        let m = Mesh::cube(8);
        assert_eq!(rd_schedule(&m, NodeId(0)).steps(), rd_steps(&m));
    }

    #[test]
    fn non_power_of_two() {
        let m = Mesh::cube(10);
        let s = rd_schedule(&m, NodeId(123));
        s.validate(&m, 1).unwrap();
        assert_eq!(s.steps(), rd_steps(&m)); // 3 * ceil(log2 10) = 12
        assert_eq!(s.steps(), 12);
    }

    #[test]
    fn messages_are_straight_lines() {
        let m = Mesh::cube(8);
        let s = rd_schedule(&m, NodeId(77));
        for msg in &s.messages {
            let RoutePlan::Coded(cp) = &msg.plan else {
                panic!("RD uses fixed paths");
            };
            let nodes = cp.path.nodes(&m);
            let a = m.coord_of(nodes[0]);
            let b = m.coord_of(*nodes.last().unwrap());
            assert_eq!(a.hamming(&b), 1, "RD partners differ in one dimension");
            assert!(cp.path.is_minimal(&m));
            assert!(wormcast_routing::is_dor_legal(&m, &cp.path));
        }
    }

    #[test]
    fn one_message_per_node_per_step() {
        let m = Mesh::cube(8);
        let s = rd_schedule(&m, NodeId(0));
        // validate(.., 1) already enforces this; double-check the total:
        // N-1 messages deliver to N-1 nodes exactly once.
        assert_eq!(s.num_messages(), m.num_nodes() - 1);
    }

    #[test]
    fn message_count_doubles_per_step() {
        let m = Mesh::cube(8);
        let s = rd_schedule(&m, NodeId(0));
        let mut per_step = vec![0usize; s.steps() as usize + 1];
        for msg in &s.messages {
            per_step[msg.step as usize] += 1;
        }
        for (k, &count) in per_step.iter().enumerate().skip(1) {
            assert_eq!(count, 1 << (k - 1), "step {k} message count");
        }
    }

    #[test]
    fn works_on_2d_and_1d() {
        let m2 = Mesh::square(8);
        rd_schedule(&m2, NodeId(5)).validate(&m2, 1).unwrap();
        let m1 = Mesh::new(&[16]);
        let s = rd_schedule(&m1, NodeId(3));
        s.validate(&m1, 1).unwrap();
        assert_eq!(s.steps(), 4);
    }
}
