//! Queue-aware Adaptive Broadcast (QAB) — the repo's fifth algorithm.
//!
//! QAB keeps AB's three-step dissemination *skeleton* — source to the two
//! plane corners, corner relays along Z, serpentine coverage of each
//! half-plane — and changes what happens on every leg where the router has
//! a choice: adaptive legs draw their candidates from the **negative-first**
//! turn model and pick among them by **local per-channel queue depth**
//! (`wormcast_routing::QueueAdaptive`, tie-break by channel index), in the
//! spirit of backpressure broadcast (Sinha–Paschos–Modiano,
//! arXiv:1604.00446). Under faults, QAB's encroached legs are re-planned as
//! negative-first-legal detours instead of AB's fixed west-first
//! staircases.
//!
//! Sharing the skeleton is deliberate: the saturation knee of this network
//! is set by per-message start-up cost (Ts dominates the µs-scale budget),
//! so a dissemination tree of unicast legs — one start-up per receiver —
//! caps out far below AB's coded serpentines, which cover a half-plane per
//! start-up. QAB therefore spends its novelty where it pays: backlog-aware
//! channel selection on the contested adaptive legs and on all mixed
//! unicast traffic, with the step count (3) and message budget identical to
//! AB's, so any delivered-load gap between the two *is* the selection
//! policy, not the tree shape.

use crate::ab::{ab_steps, corner_plane_schedule, SerpentineStyle};
use crate::schedule::BroadcastSchedule;
use wormcast_topology::{Mesh, NodeId};

/// Build the QAB broadcast schedule for `source` on a 2D or 3D `mesh`:
/// AB's corner/relay/serpentine skeleton with negative-first-legal
/// serpentine segmentation, labelled so the engines bind the queue-aware
/// negative-first substrate to its adaptive legs.
///
/// # Panics
/// Panics if the mesh is not 2D/3D or any of the X/Y dimensions is < 2
/// (same domain as AB).
pub fn qab_schedule(mesh: &Mesh, source: NodeId) -> BroadcastSchedule {
    corner_plane_schedule(mesh, source, SerpentineStyle::NegativeFirst, "QAB")
}

/// QAB's message-passing step count: 3, independent of network size (the
/// skeleton is AB's).
pub fn qab_steps(mesh: &Mesh) -> u32 {
    ab_steps(mesh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ab::ab_schedule;
    use crate::schedule::RoutePlan;
    use wormcast_topology::{Coord, Topology};

    #[test]
    fn validates_on_the_paper_meshes() {
        for dims in [[8u16, 8, 8], [4, 4, 4], [4, 4, 16], [10, 10, 10]] {
            let m = Mesh::new(&dims);
            for src in [0u32, 5, m.num_nodes() as u32 - 1] {
                let s = qab_schedule(&m, NodeId(src));
                s.validate(&m, 2)
                    .unwrap_or_else(|e| panic!("{dims:?} src {src}: {e:?}"));
                assert_eq!(s.steps(), 3, "{dims:?} src {src}");
            }
        }
    }

    #[test]
    fn works_on_2d_meshes() {
        for dims in [[8u16, 8], [3, 5]] {
            let m = Mesh::new(&dims);
            let s = qab_schedule(&m, NodeId(1));
            s.validate(&m, 2)
                .unwrap_or_else(|e| panic!("{dims:?}: {e:?}"));
        }
    }

    #[test]
    fn same_skeleton_as_ab_with_its_own_label() {
        let m = Mesh::cube(8);
        let q = qab_schedule(&m, NodeId(100));
        let a = ab_schedule(&m, NodeId(100));
        assert_eq!(q.algorithm, "QAB");
        assert_eq!(q.messages.len(), a.messages.len());
        for (qm, am) in q.messages.iter().zip(&a.messages) {
            assert_eq!(qm.step, am.step);
            assert_eq!(qm.charge_startup, am.charge_startup);
        }
        assert_eq!(qab_steps(&m), 3);
    }

    #[test]
    fn adaptive_legs_exist_for_the_substrate_to_steer() {
        // The queue-aware policy only matters if the schedule leaves the
        // router choices: the corner legs must be adaptive, the coverage
        // legs coded (one start-up per serpentine, not per receiver).
        let m = Mesh::cube(8);
        let s = qab_schedule(&m, NodeId(100));
        let adaptive = s
            .messages
            .iter()
            .filter(|msg| matches!(msg.plan, RoutePlan::Adaptive { .. }))
            .count();
        let coded = s.messages.len() - adaptive;
        assert!(adaptive >= 1, "corner legs are adaptive");
        assert!(coded > adaptive, "coverage is coded, not per-receiver");
    }

    #[test]
    fn serpentine_segments_are_negative_first_legal() {
        // QAB's deadlock argument: every coded segment must conform to the
        // negative-first turn model (all negative hops before any positive
        // hop), so coded traffic and the negative-first adaptive legs share
        // one acyclic channel-dependency order.
        let m = Mesh::square(8);
        let s = qab_schedule(&m, m.node_at(&Coord::xy(3, 4)));
        for msg in &s.messages {
            let RoutePlan::Coded(cp) = &msg.plan else {
                continue;
            };
            let mut seen_positive = false;
            for &ch in &cp.path.hops {
                let (from, to) = m.channel_endpoints(ch);
                let (fc, tc) = (m.coord_of(from), m.coord_of(to));
                let positive = (0..m.ndims()).any(|d| tc.get(d) > fc.get(d));
                if positive {
                    seen_positive = true;
                } else {
                    assert!(
                        !seen_positive,
                        "negative hop after a positive one in a coded segment"
                    );
                }
            }
        }
    }
}
