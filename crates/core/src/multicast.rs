//! Multicast — delivery to an arbitrary destination subset.
//!
//! The paper's conclusion names multicast as the natural next step for the
//! coded-path approach ("an interesting line of research would be to propose
//! multicast and broadcast algorithms"). This module provides three
//! multicast schemes sharing the [`BroadcastSchedule`] machinery (a
//! broadcast is just the special case `dests = all nodes`):
//!
//! * [`um_multicast`] — **UM**, unicast-based multicast (McKinley et al.'s
//!   U-mesh shape): recursive doubling over the *destination list* in
//!   dimension order; ⌈log₂(m+1)⌉ steps for m destinations. The natural
//!   baseline, one unicast per destination overall.
//! * [`cpr_multicast`] — **CM**, coded-path multicast in the DB style: the
//!   destination set is partitioned by plane and row; one coded path per
//!   non-empty row delivers every destination in that row in one step, with
//!   a DB-like corner/column backbone reaching each populated plane first.
//! * [`sp_multicast`] — **SP**, single-path (Hamiltonian-order) multicast in
//!   the path-based tradition of Lin & Ni: one coded path visits all
//!   destinations in boustrophedon (serpentine) order, chained row by row
//!   like AB's dissemination step; 1 logical step, longest paths.
//!
//! All three produce validated schedules executable by the standard
//! `wormcast-workload` executor.

use crate::schedule::{BroadcastSchedule, RoutePlan, ScheduledMessage};
use std::collections::BTreeSet;
use wormcast_routing::{dor_path, CodedPath, Path};
use wormcast_topology::{Coord, Mesh, NodeId, Topology};

/// Deduplicate, drop the source, and order a destination list.
fn normalize(source: NodeId, dests: &[NodeId]) -> Vec<NodeId> {
    let set: BTreeSet<NodeId> = dests.iter().copied().filter(|&d| d != source).collect();
    set.into_iter().collect()
}

/// Unicast-based multicast: recursive doubling over the destination list.
///
/// The holder set starts as `{source}`; each step every holder sends to the
/// destination at the "same relative position" of the other half of its
/// responsibility span — the U-mesh discipline, using dimension-ordered
/// paths throughout.
///
/// # Panics
/// Panics if `dests` (after removing the source and duplicates) is empty.
pub fn um_multicast(mesh: &Mesh, source: NodeId, dests: &[NodeId]) -> BroadcastSchedule {
    let dests = normalize(source, dests);
    assert!(
        !dests.is_empty(),
        "multicast needs at least one destination"
    );
    let mut messages = Vec::new();
    // Responsibility span: a slice of the sorted destination list, plus the
    // holder in charge of it.
    fn recurse(
        mesh: &Mesh,
        holder: NodeId,
        span: &[NodeId],
        step: u32,
        out: &mut Vec<ScheduledMessage>,
    ) {
        if span.is_empty() {
            return;
        }
        let mid = span.len() / 2;
        // The other half's representative receives the message this step.
        let partner = span[mid];
        out.push(ScheduledMessage::step_message(
            step,
            RoutePlan::Coded(CodedPath::unicast(mesh, dor_path(mesh, holder, partner))),
        ));
        // Holder keeps the lower half (excluding partner); partner takes the
        // upper half (excluding itself).
        recurse(mesh, holder, &span[..mid], step + 1, out);
        recurse(mesh, partner, &span[mid + 1..], step + 1, out);
    }
    recurse(mesh, source, &dests, 1, &mut messages);
    BroadcastSchedule {
        source,
        messages,
        algorithm: "UM",
    }
}

/// UM's step count for `m` destinations: ⌈log₂(m+1)⌉.
pub fn um_steps(m: usize) -> u32 {
    (usize::BITS - m.checked_add(1).expect("sane dest count").leading_zeros())
        .saturating_sub(((m + 1).is_power_of_two()) as u32)
}

/// Coded-path multicast in the DB style.
///
/// Steps: (1) the source unicasts to the anchor corner of every *populated*
/// plane's column... more precisely, to the anchor corner of its own plane;
/// (2) the anchor relays along its Z column with a selective coded path
/// delivering only at populated planes' corners; (3) each populated plane's
/// corner covers the plane's destinations row by row with selective coded
/// paths — one message per populated row, all in the same step (multiport
/// CPR router, as for DB).
///
/// # Panics
/// Panics as for [`um_multicast`]; also requires a 3D mesh.
pub fn cpr_multicast(mesh: &Mesh, source: NodeId, dests: &[NodeId]) -> BroadcastSchedule {
    assert_eq!(mesh.ndims(), 3, "cpr_multicast is defined for 3D meshes");
    let dests = normalize(source, dests);
    assert!(
        !dests.is_empty(),
        "multicast needs at least one destination"
    );
    let src_c = mesh.coord_of(source);
    let zs = src_c.get(2);
    let mut messages = Vec::new();

    // Group destinations by plane, then by row.
    let mut by_plane: std::collections::BTreeMap<u16, Vec<Coord>> = Default::default();
    for &d in &dests {
        let c = mesh.coord_of(d);
        by_plane.entry(c.get(2)).or_default().push(c);
    }

    // The backbone anchor: corner (0,0,z) of each plane.
    let anchor = |z: u16| Coord::xyz(0, 0, z);
    let a_src = anchor(zs);

    // Step 1: source -> its own plane's anchor (skip if source is there).
    let mut anchor_holds_from: std::collections::BTreeMap<u16, u32> = Default::default();
    if src_c == a_src {
        anchor_holds_from.insert(zs, 0);
    } else {
        messages.push(ScheduledMessage::step_message(
            1,
            RoutePlan::Coded(CodedPath::unicast(
                mesh,
                dor_path(mesh, source, mesh.node_at(&a_src)),
            )),
        ));
        anchor_holds_from.insert(zs, 1);
    }

    // Step 2: Z-column relay, delivering only at populated planes (and at
    // no others). Two directions from zs.
    let populated: BTreeSet<u16> = by_plane.keys().copied().collect();
    for (from, to) in [(zs, mesh.dim_size(2) - 1), (zs, 0)] {
        if from == to {
            continue;
        }
        let walk: Vec<u16> = if from <= to {
            (from..=to).collect()
        } else {
            (to..=from).rev().collect()
        };
        // Receivers: anchors of populated planes beyond zs in this direction.
        let rx: Vec<NodeId> = walk[1..]
            .iter()
            .filter(|z| populated.contains(z))
            .map(|&z| mesh.node_at(&anchor(z)))
            .collect();
        if rx.is_empty() {
            continue;
        }
        // Trim the walk at the last receiver.
        let last_z = mesh.coord_of(*rx.last().unwrap()).get(2);
        let end = walk.iter().position(|&z| z == last_z).unwrap();
        let nodes: Vec<NodeId> = walk[..=end]
            .iter()
            .map(|&z| mesh.node_at(&anchor(z)))
            .collect();
        messages.push(ScheduledMessage::step_message(
            2,
            RoutePlan::Coded(CodedPath::selective(mesh, Path::through(mesh, &nodes), &rx)),
        ));
        for r in rx {
            anchor_holds_from.insert(mesh.coord_of(r).get(2), 2);
        }
    }

    // Step 3: per populated plane, the anchor walks each populated row:
    // a selective path down column x=0 to the row, then east across it.
    for (&z, coords) in &by_plane {
        let mut rows: std::collections::BTreeMap<u16, Vec<Coord>> = Default::default();
        for &c in coords {
            rows.entry(c.get(1)).or_default().push(c);
        }
        let astart = anchor(z);
        for (&y, row_dests) in &rows {
            // Path: (0,0,z) .. (0,y,z) .. (max_x,y,z).
            let max_x = row_dests.iter().map(|c| c.get(0)).max().unwrap();
            let mut nodes: Vec<NodeId> = (0..=y)
                .map(|yy| mesh.node_at(&astart.with(1, yy)))
                .collect();
            nodes.extend((1..=max_x).map(|xx| mesh.node_at(&Coord::xyz(xx, y, z))));
            let rx: Vec<NodeId> = row_dests
                .iter()
                .map(|c| mesh.node_at(c))
                .filter(|&n| n != mesh.node_at(&astart))
                .collect();
            if rx.is_empty() {
                continue;
            }
            messages.push(ScheduledMessage::step_message(
                3,
                RoutePlan::Coded(CodedPath::selective(mesh, Path::through(mesh, &nodes), &rx)),
            ));
        }
    }

    // Anchors that are themselves destinations already got the payload via
    // steps 1-2 only if they were receivers there; anchors of populated
    // planes were delivered in step 2 (or are the source) — but an anchor
    // that is itself a *destination* needs a recorded delivery: step 2's
    // selective path delivered it. An anchor that is NOT a destination
    // received a relay copy too (it must, to relay) — exactly-once coverage
    // therefore counts anchors as covered; prune them from `dests` checking
    // via validate_multicast below.
    compress(&mut messages);
    BroadcastSchedule {
        source,
        messages,
        algorithm: "CM",
    }
}

/// Single-path multicast: one chained coded path visits every destination in
/// serpentine scan order (plane-major, then boustrophedon rows), paying one
/// start-up total.
///
/// # Panics
/// Panics as for [`um_multicast`]; requires a 3D mesh.
pub fn sp_multicast(mesh: &Mesh, source: NodeId, dests: &[NodeId]) -> BroadcastSchedule {
    assert_eq!(mesh.ndims(), 3, "sp_multicast is defined for 3D meshes");
    let dests = normalize(source, dests);
    assert!(
        !dests.is_empty(),
        "multicast needs at least one destination"
    );
    // Scan order: z, then y, then x alternating direction per (z,y) parity —
    // a dimension-ordered chain whose segments are each DOR-legal.
    let mut ordered: Vec<Coord> = dests.iter().map(|&d| mesh.coord_of(d)).collect();
    ordered.sort_by_key(|c| {
        let (x, y, z) = (c.get(0), c.get(1), c.get(2));
        let xkey = if (y + z) % 2 == 0 {
            x as i32
        } else {
            -(x as i32)
        };
        (z, y, xkey)
    });
    let mut messages = Vec::new();
    let mut cur = source;
    for (i, c) in ordered.iter().enumerate() {
        let nxt = mesh.node_at(c);
        if nxt == cur {
            continue;
        }
        let plan = RoutePlan::Coded(CodedPath::unicast(mesh, dor_path(mesh, cur, nxt)));
        messages.push(if i == 0 {
            ScheduledMessage::step_message(1, plan)
        } else {
            // Hardware-relayed continuation: one start-up for the chain.
            ScheduledMessage::continuation(1, plan)
        });
        cur = nxt;
    }
    BroadcastSchedule {
        source,
        messages,
        algorithm: "SP",
    }
}

/// Check a multicast schedule: every destination receives ≥ once, nothing
/// delivers to the source, senders are causal, and only destinations or
/// backbone anchors receive copies.
///
/// Returns the set of non-destination nodes that received relay copies
/// (backbone overhead), or an error string.
pub fn validate_multicast(
    mesh: &Mesh,
    schedule: &BroadcastSchedule,
    dests: &[NodeId],
) -> Result<Vec<NodeId>, String> {
    let want: BTreeSet<NodeId> = normalize(schedule.source, dests).into_iter().collect();
    let mut got: std::collections::BTreeMap<NodeId, u32> = Default::default();
    for m in &schedule.messages {
        for r in m.plan.receivers(mesh) {
            if r == schedule.source {
                return Err("delivers to source".into());
            }
            let e = got.entry(r).or_insert(u32::MAX);
            *e = (*e).min(m.step);
        }
    }
    for &d in &want {
        if !got.contains_key(&d) {
            return Err(format!("destination {d} missed"));
        }
    }
    for m in &schedule.messages {
        let s = m.plan.src();
        if s != schedule.source {
            match got.get(&s) {
                Some(&g) if g < m.step || (g == m.step && !m.charge_startup) => {}
                _ => return Err(format!("sender {s} lacks payload at step {}", m.step)),
            }
        }
    }
    Ok(got.keys().filter(|n| !want.contains(n)).copied().collect())
}

fn compress(messages: &mut [ScheduledMessage]) {
    let used: BTreeSet<u32> = messages.iter().map(|m| m.step).collect();
    let map: std::collections::HashMap<u32, u32> = used
        .into_iter()
        .enumerate()
        .map(|(i, s)| (s, i as u32 + 1))
        .collect();
    for m in messages.iter_mut() {
        m.step = map[&m.step];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormcast_sim::SimRng;

    fn random_dests(mesh: &Mesh, source: NodeId, m: usize, seed: u64) -> Vec<NodeId> {
        let mut rng = SimRng::new(seed);
        let mut out = Vec::new();
        while out.len() < m {
            let d = NodeId(rng.index(mesh.num_nodes()) as u32);
            if d != source && !out.contains(&d) {
                out.push(d);
            }
        }
        out
    }

    #[test]
    fn um_covers_random_subsets() {
        let mesh = Mesh::cube(4);
        let src = NodeId(21);
        for m in [1usize, 3, 10, 30, 63] {
            let dests = random_dests(&mesh, src, m, m as u64);
            let s = um_multicast(&mesh, src, &dests);
            let extra = validate_multicast(&mesh, &s, &dests).unwrap();
            assert!(extra.is_empty(), "UM never touches non-destinations");
            assert_eq!(s.num_messages(), m, "one unicast per destination");
        }
    }

    #[test]
    fn um_step_count_is_log() {
        let mesh = Mesh::cube(8);
        let src = NodeId(0);
        for (m, expect) in [(1usize, 1u32), (3, 2), (7, 3), (15, 4), (100, 7)] {
            let dests = random_dests(&mesh, src, m, 99 + m as u64);
            let s = um_multicast(&mesh, src, &dests);
            assert_eq!(s.steps(), expect, "m={m}");
            assert_eq!(um_steps(m), expect, "um_steps({m})");
        }
    }

    #[test]
    fn cm_covers_random_subsets_in_three_steps() {
        let mesh = Mesh::cube(8);
        let src = NodeId(77);
        for m in [1usize, 5, 40, 200] {
            let dests = random_dests(&mesh, src, m, m as u64 ^ 0xC0);
            let s = cpr_multicast(&mesh, src, &dests);
            validate_multicast(&mesh, &s, &dests).unwrap_or_else(|e| panic!("m={m}: {e}"));
            assert!(s.steps() <= 3, "CM is a 3-step scheme, got {}", s.steps());
        }
    }

    #[test]
    fn cm_message_count_scales_with_rows_not_dests() {
        let mesh = Mesh::cube(8);
        let src = NodeId(0);
        // All 448 nodes of 7 planes as destinations: CM sends per populated
        // row (<= 8*8=64 rows + backbone), UM sends one per destination.
        let dests: Vec<NodeId> = (64..512).map(|i| NodeId(i as u32)).collect();
        let cm = cpr_multicast(&mesh, src, &dests);
        let um = um_multicast(&mesh, src, &dests);
        assert!(cm.num_messages() < 70, "CM: {}", cm.num_messages());
        assert_eq!(um.num_messages(), 448);
    }

    #[test]
    fn sp_single_startup_chain() {
        let mesh = Mesh::cube(4);
        let src = NodeId(0);
        let dests = random_dests(&mesh, src, 12, 5);
        let s = sp_multicast(&mesh, src, &dests);
        validate_multicast(&mesh, &s, &dests).unwrap();
        assert_eq!(s.steps(), 1, "one logical step");
        let startups = s.messages.iter().filter(|m| m.charge_startup).count();
        assert_eq!(startups, 1, "start-up paid once");
    }

    #[test]
    fn broadcast_is_a_multicast_special_case() {
        let mesh = Mesh::cube(4);
        let src = NodeId(33);
        let all: Vec<NodeId> = (0..64).map(NodeId).collect();
        for build in [um_multicast, cpr_multicast, sp_multicast] {
            let s = build(&mesh, src, &all);
            validate_multicast(&mesh, &s, &all).unwrap();
        }
    }

    #[test]
    fn single_destination_degenerates_to_unicast() {
        let mesh = Mesh::cube(4);
        let src = NodeId(0);
        let dests = vec![NodeId(63)];
        let um = um_multicast(&mesh, src, &dests);
        assert_eq!(um.num_messages(), 1);
        assert_eq!(um.steps(), 1);
        let sp = sp_multicast(&mesh, src, &dests);
        assert_eq!(sp.num_messages(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one destination")]
    fn empty_destination_set_rejected() {
        let mesh = Mesh::cube(4);
        let _ = um_multicast(&mesh, NodeId(0), &[NodeId(0)]);
    }

    #[test]
    fn duplicate_and_source_dests_are_normalized() {
        let mesh = Mesh::cube(4);
        let src = NodeId(5);
        let dests = vec![NodeId(9), NodeId(9), src, NodeId(10)];
        let s = um_multicast(&mesh, src, &dests);
        assert_eq!(s.num_messages(), 2);
        validate_multicast(&mesh, &s, &dests).unwrap();
    }
}
