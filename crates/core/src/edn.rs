//! Extended Dominating Node (EDN) — Tsai & McKinley [TPDS'97].
//!
//! EDN broadcasts on **multiport** (three-port) wormhole meshes by dividing
//! the network into levels, each served by a dominating set of the level
//! below. The paper pins down the properties this reimplementation must
//! reproduce:
//!
//! * the router is three-port: a node sends at most 3 messages per step;
//! * dimensions are expected to be multiples of 4 (§2): the natural sizes
//!   are `(4·2^k) × (4·2^k) × (4·2^m)`;
//! * the step count on those sizes is `k + m + 4` (§2);
//! * at 4×4×4 EDN matches DB's 4 steps; on larger networks the step count —
//!   and therefore the latency and the arrival-time spread — grows with
//!   network size (§3.1, §3.2).
//!
//! The construction has two phases:
//!
//! 1. **Reduction.** While the current block of responsibility is wider than
//!    the 4×4×4 base: one step per XY level — the holder splits its block
//!    into the four X–Y quadrants and sends to its mirror node in the other
//!    three (3 sends, the full three-port fan-out) — and one step per Z
//!    level (halving, 1 send). Conforming sizes need exactly `k` XY levels
//!    and `m` Z levels.
//! 2. **Base block (≤ 4×4×4), 4 steps.** (a) halve the block's Z extent;
//!    (b) each holder covers its remaining adjacent plane(s); (c) in-plane,
//!    each holder sends to its mirror in the other three 2×2 quadrants;
//!    (d) each 2×2 quadrant holder delivers to the ≤ 3 nodes it dominates
//!    (its quadrant neighbours) — the dominating-set delivery that gives the
//!    algorithm its name.
//!
//! All messages are dimension-ordered unicasts, as in the original.

use crate::schedule::{BroadcastSchedule, RoutePlan, ScheduledMessage};
use std::collections::BTreeSet;
use wormcast_routing::{dor_path, CodedPath};
use wormcast_topology::{Coord, Mesh, NodeId, Topology};

#[derive(Debug, Clone)]
struct Block {
    lo: [u16; 3],
    hi: [u16; 3],
}

impl Block {
    fn extent(&self, d: usize) -> u16 {
        self.hi[d] - self.lo[d]
    }
}

/// Build the EDN broadcast schedule for `source` on a 3D `mesh`.
///
/// # Panics
/// Panics if the mesh is not 3-dimensional.
pub fn edn_schedule(mesh: &Mesh, source: NodeId) -> BroadcastSchedule {
    assert_eq!(mesh.ndims(), 3, "EDN is defined here for 3D meshes");
    let mut messages: Vec<ScheduledMessage> = Vec::new();
    let whole = Block {
        lo: [0, 0, 0],
        hi: [mesh.dim_size(0), mesh.dim_size(1), mesh.dim_size(2)],
    };
    let mut step = 1;

    // Holders and the block each is responsible for.
    let mut holders: Vec<(Coord, Block)> = vec![(mesh.coord_of(source), whole)];

    // Phase 1a: XY quadrant reduction.
    while holders
        .iter()
        .any(|(_, b)| b.extent(0) > 4 || b.extent(1) > 4)
    {
        holders = split_step(mesh, holders, &[0, 1], step, &mut messages);
        step += 1;
    }
    // Phase 1b: Z halving.
    while holders.iter().any(|(_, b)| b.extent(2) > 4) {
        holders = split_step(mesh, holders, &[2], step, &mut messages);
        step += 1;
    }

    // Phase 2: the 4-step base schedule on each ≤4×4×4 block.
    // (a) halve Z within the block.
    holders = base_z_halve(mesh, holders, step, &mut messages);
    step += 1;
    // (b) cover remaining Z-adjacent planes.
    holders = base_z_adjacent(mesh, holders, step, &mut messages);
    step += 1;
    // (c) in-plane 2×2 quadrant mirrors.
    holders = split_step(mesh, holders, &[0, 1], step, &mut messages);
    step += 1;
    // (d) dominating delivery within each ≤2×2×1 cell.
    base_dominate(mesh, holders, step, &mut messages);

    compress_steps(&mut messages);
    BroadcastSchedule {
        source,
        messages,
        algorithm: "EDN",
    }
}

/// One reduction step: every holder splits its block along each dimension in
/// `dims` that is still wider than the base (4 for reduction phases, 2 for
/// the in-plane base step) and sends to its mirror in every other sub-block.
fn split_step(
    mesh: &Mesh,
    holders: Vec<(Coord, Block)>,
    dims: &[usize],
    step: u32,
    out: &mut Vec<ScheduledMessage>,
) -> Vec<(Coord, Block)> {
    let mut next = Vec::new();
    for (holder, block) in holders {
        // Which of the requested dims actually split (extent above target)?
        let target = |d: usize| -> u16 {
            if d == 2 {
                4
            } else if block.extent(0) <= 4 && block.extent(1) <= 4 {
                2 // base in-plane step
            } else {
                4
            }
        };
        let split_dims: Vec<usize> = dims
            .iter()
            .copied()
            .filter(|&d| block.extent(d) > target(d))
            .collect();
        if split_dims.is_empty() {
            next.push((holder, block));
            continue;
        }
        // Enumerate all sub-blocks (2^|split_dims| of them).
        let mut mids = [0u16; 3];
        for &d in &split_dims {
            mids[d] = block.lo[d] + block.extent(d) / 2;
        }
        for mask in 0u32..(1 << split_dims.len()) {
            let mut sub = block.clone();
            for (i, &d) in split_dims.iter().enumerate() {
                if mask & (1 << i) == 0 {
                    sub.hi[d] = mids[d];
                } else {
                    sub.lo[d] = mids[d];
                }
            }
            // Mirror of the holder in this sub-block (same relative
            // position, clamped).
            let mut mirror = holder;
            let mut is_own = true;
            for &d in &split_dims {
                let own_lo = if holder.get(d) < mids[d] {
                    block.lo[d]
                } else {
                    mids[d]
                };
                if own_lo != sub.lo[d] {
                    is_own = false;
                }
                let rel = holder.get(d) - own_lo;
                mirror = mirror.with(d, sub.lo[d] + rel.min(sub.extent(d) - 1));
            }
            if is_own {
                next.push((holder, sub));
            } else {
                let src = mesh.node_at(&holder);
                let dst = mesh.node_at(&mirror);
                out.push(ScheduledMessage::step_message(
                    step,
                    RoutePlan::Coded(CodedPath::unicast(mesh, dor_path(mesh, src, dst))),
                ));
                next.push((mirror, sub));
            }
        }
    }
    next
}

/// Base step (a): halve each block's Z extent (if > 2).
fn base_z_halve(
    mesh: &Mesh,
    holders: Vec<(Coord, Block)>,
    step: u32,
    out: &mut Vec<ScheduledMessage>,
) -> Vec<(Coord, Block)> {
    let mut next = Vec::new();
    for (holder, block) in holders {
        if block.extent(2) <= 2 {
            next.push((holder, block));
            continue;
        }
        let mid = block.lo[2] + block.extent(2) / 2;
        let (mut lower, mut upper) = (block.clone(), block.clone());
        lower.hi[2] = mid;
        upper.lo[2] = mid;
        let (own, other) = if holder.get(2) < mid {
            (lower, upper)
        } else {
            (upper, lower)
        };
        let own_lo = own.lo[2];
        let rel = holder.get(2) - own_lo;
        let mirror = holder.with(2, other.lo[2] + rel.min(other.extent(2) - 1));
        out.push(ScheduledMessage::step_message(
            step,
            RoutePlan::Coded(CodedPath::unicast(
                mesh,
                dor_path(mesh, mesh.node_at(&holder), mesh.node_at(&mirror)),
            )),
        ));
        next.push((holder, own));
        next.push((mirror, other));
    }
    next
}

/// Base step (b): each holder covers the other plane(s) of its ≤2-deep Z
/// block, leaving every X–Y plane with exactly one holder.
fn base_z_adjacent(
    mesh: &Mesh,
    holders: Vec<(Coord, Block)>,
    step: u32,
    out: &mut Vec<ScheduledMessage>,
) -> Vec<(Coord, Block)> {
    let mut next = Vec::new();
    for (holder, block) in holders {
        for z in block.lo[2]..block.hi[2] {
            let mut plane = block.clone();
            plane.lo[2] = z;
            plane.hi[2] = z + 1;
            if z == holder.get(2) {
                next.push((holder, plane));
            } else {
                let mirror = holder.with(2, z);
                out.push(ScheduledMessage::step_message(
                    step,
                    RoutePlan::Coded(CodedPath::unicast(
                        mesh,
                        dor_path(mesh, mesh.node_at(&holder), mesh.node_at(&mirror)),
                    )),
                ));
                next.push((mirror, plane));
            }
        }
    }
    next
}

/// Base step (d): each holder delivers to every remaining node of its ≤2×2
/// cell — the dominating-node delivery (≤ 3 sends, within port budget).
fn base_dominate(
    mesh: &Mesh,
    holders: Vec<(Coord, Block)>,
    step: u32,
    out: &mut Vec<ScheduledMessage>,
) {
    for (holder, block) in holders {
        debug_assert!(block.extent(0) <= 2 && block.extent(1) <= 2 && block.extent(2) == 1);
        for y in block.lo[1]..block.hi[1] {
            for x in block.lo[0]..block.hi[0] {
                let c = holder.with(0, x).with(1, y);
                if c == holder {
                    continue;
                }
                out.push(ScheduledMessage::step_message(
                    step,
                    RoutePlan::Coded(CodedPath::unicast(
                        mesh,
                        dor_path(mesh, mesh.node_at(&holder), mesh.node_at(&c)),
                    )),
                ));
            }
        }
    }
}

/// Remap step numbers to be contiguous from 1 (degenerate phases on small or
/// non-conforming meshes can leave gaps).
fn compress_steps(messages: &mut [ScheduledMessage]) {
    let used: BTreeSet<u32> = messages.iter().map(|m| m.step).collect();
    let map: std::collections::HashMap<u32, u32> = used
        .into_iter()
        .enumerate()
        .map(|(i, s)| (s, i as u32 + 1))
        .collect();
    for m in messages {
        m.step = map[&m.step];
    }
}

/// EDN's step count for a conforming `(4·2^k) × (4·2^k) × (4·2^m)` mesh:
/// `k + m + 4` (§2 of the paper). For non-conforming sizes this returns the
/// generalized construction's count.
pub fn edn_steps(mesh: &Mesh) -> u32 {
    assert_eq!(mesh.ndims(), 3);
    let levels = |ext: u16| -> u32 {
        let mut e = ext;
        let mut n = 0;
        while e > 4 {
            e = e.div_ceil(2);
            n += 1;
        }
        n
    };
    let k = levels(mesh.dim_size(0)).max(levels(mesh.dim_size(1)));
    let m = levels(mesh.dim_size(2));
    k + m + 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_4x4x4_in_4_steps() {
        let m = Mesh::cube(4);
        for src in [0u32, 13, 63] {
            let s = edn_schedule(&m, NodeId(src));
            s.validate(&m, 3).expect("EDN valid with three ports");
            assert_eq!(s.steps(), 4, "4x4x4 takes k+m+4 = 4 steps");
        }
    }

    #[test]
    fn conforming_step_counts_match_closed_form() {
        // (4·2^k)^2 × (4·2^m) => k+m+4.
        for (dims, expect) in [
            ([4u16, 4, 4], 4),
            ([8, 8, 8], 6),    // k=1, m=1
            ([4, 4, 16], 6),   // k=0, m=2
            ([8, 8, 16], 7),   // k=1, m=2
            ([16, 16, 8], 7),  // k=2, m=1
            ([16, 16, 16], 8), // k=2, m=2
        ] {
            let m = Mesh::new(&dims);
            assert_eq!(edn_steps(&m), expect, "{dims:?} closed form");
            let s = edn_schedule(&m, NodeId(0));
            s.validate(&m, 3).unwrap();
            assert_eq!(s.steps(), expect, "{dims:?} constructed steps");
        }
    }

    #[test]
    fn step_count_grows_with_network_size() {
        let small = edn_steps(&Mesh::cube(4));
        let mid = edn_steps(&Mesh::cube(8));
        let large = edn_steps(&Mesh::cube(16));
        assert!(small < mid && mid < large);
    }

    #[test]
    fn non_conforming_sizes_still_cover() {
        let m = Mesh::cube(10);
        let s = edn_schedule(&m, NodeId(123));
        s.validate(&m, 3).expect("generalized EDN covers 10x10x10");
    }

    /// The ceil-halving relaxation on the paper's 10×10×10 mesh: extents
    /// reduce 10 → 5 → 3 (⌈e/2⌉ per level), so the non-conforming size slots
    /// into the `k + m + 4` table at k = m = 2, exactly as a conforming
    /// 16×16×16 would.
    #[test]
    fn ceil_halving_relaxation_on_10x10x10() {
        let m = Mesh::new(&[10, 10, 10]);
        // Closed form: two XY levels, two Z levels.
        assert_eq!(edn_steps(&m), 2 + 2 + 4);
        assert_eq!(edn_steps(&m), edn_steps(&Mesh::cube(16)));
        for src in [0u32, 137, 999] {
            let s = edn_schedule(&m, NodeId(src));
            assert_eq!(s.steps(), 8, "constructed steps match the table");
            s.validate(&m, 3)
                .expect("valid under the three-port budget");
            // Every node is dominated: delivered to by exactly one of the
            // schedule's DOR unicasts (the source by none).
            let mut hits = vec![0u32; m.num_nodes()];
            for msg in &s.messages {
                for r in msg.plan.receivers(&m) {
                    hits[r.0 as usize] += 1;
                }
            }
            for (i, &h) in hits.iter().enumerate() {
                let expect = u32::from(i as u32 != src);
                assert_eq!(h, expect, "node {i} dominated exactly once (src {src})");
            }
        }
    }

    #[test]
    fn respects_three_ports_from_many_sources() {
        let m = Mesh::new(&[8, 8, 4]);
        for src in (0..m.num_nodes() as u32).step_by(37) {
            edn_schedule(&m, NodeId(src)).validate(&m, 3).unwrap();
        }
    }

    #[test]
    fn all_messages_are_dor_unicasts() {
        let m = Mesh::cube(8);
        let s = edn_schedule(&m, NodeId(99));
        for msg in &s.messages {
            let RoutePlan::Coded(cp) = &msg.plan else {
                panic!("EDN uses fixed paths");
            };
            assert_eq!(cp.num_receivers(), 1, "EDN is unicast-based");
            assert!(wormcast_routing::is_dor_legal(&m, &cp.path));
        }
    }

    #[test]
    fn more_messages_than_rd() {
        // Both are unicast-based with exactly-once coverage, so both use
        // N-1 messages; EDN packs them into fewer steps.
        let m = Mesh::cube(8);
        let edn = edn_schedule(&m, NodeId(0));
        let rd = crate::rd::rd_schedule(&m, NodeId(0));
        assert_eq!(edn.num_messages(), m.num_nodes() - 1);
        assert_eq!(rd.num_messages(), m.num_nodes() - 1);
        assert!(edn.steps() < rd.steps());
    }
}
