//! Mixed-radix coordinates for n-dimensional topologies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of dimensions supported by the fixed-size coordinate type.
///
/// The paper's networks are 2D/3D meshes; the generalized-hypercube extension
/// uses mixed radices but rarely more than a handful of dimensions. Keeping
/// coordinates `Copy` (no heap allocation) matters: they are manipulated in
/// the innermost routing loops.
pub const MAX_DIMS: usize = 6;

/// A point in an n-dimensional grid, `n <= MAX_DIMS`.
///
/// Stored inline so that `Coord` is `Copy`; unused trailing dimensions are 0.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Coord {
    axes: [u16; MAX_DIMS],
    ndims: u8,
}

impl Coord {
    /// Build a coordinate from per-dimension positions.
    ///
    /// # Panics
    /// Panics if more than [`MAX_DIMS`] dimensions are given.
    pub fn new(axes: &[u16]) -> Self {
        assert!(
            axes.len() <= MAX_DIMS,
            "Coord supports at most {MAX_DIMS} dims, got {}",
            axes.len()
        );
        let mut a = [0u16; MAX_DIMS];
        a[..axes.len()].copy_from_slice(axes);
        Coord {
            axes: a,
            ndims: axes.len() as u8,
        }
    }

    /// 2D convenience constructor: `(x, y)`.
    pub fn xy(x: u16, y: u16) -> Self {
        Coord::new(&[x, y])
    }

    /// 3D convenience constructor: `(x, y, z)`.
    pub fn xyz(x: u16, y: u16, z: u16) -> Self {
        Coord::new(&[x, y, z])
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndims(&self) -> usize {
        self.ndims as usize
    }

    /// The position along dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim >= self.ndims()`.
    #[inline]
    pub fn get(&self, dim: usize) -> u16 {
        assert!(dim < self.ndims(), "dim {dim} out of range");
        self.axes[dim]
    }

    /// Returns a copy with dimension `dim` set to `value`.
    #[inline]
    pub fn with(&self, dim: usize, value: u16) -> Coord {
        assert!(dim < self.ndims(), "dim {dim} out of range");
        let mut c = *self;
        c.axes[dim] = value;
        c
    }

    /// The coordinate axes as a slice.
    #[inline]
    pub fn axes(&self) -> &[u16] {
        &self.axes[..self.ndims()]
    }

    /// Manhattan (L1) distance to `other` in a mesh (no wraparound).
    ///
    /// # Panics
    /// Panics if dimensionality differs.
    pub fn manhattan(&self, other: &Coord) -> u32 {
        assert_eq!(self.ndims, other.ndims, "dimensionality mismatch");
        self.axes()
            .iter()
            .zip(other.axes())
            .map(|(&a, &b)| (a as i32 - b as i32).unsigned_abs())
            .sum()
    }

    /// Number of dimensions in which the two coordinates differ.
    pub fn hamming(&self, other: &Coord) -> u32 {
        assert_eq!(self.ndims, other.ndims, "dimensionality mismatch");
        self.axes()
            .iter()
            .zip(other.axes())
            .filter(|(a, b)| a != b)
            .count() as u32
    }
}

impl fmt::Debug for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.axes().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A direction along one dimension: towards higher or lower coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sign {
    /// Towards increasing coordinate (east / north / up in 2D/3D diagrams).
    Plus,
    /// Towards decreasing coordinate.
    Minus,
}

impl Sign {
    /// The opposite direction.
    #[inline]
    pub fn flip(self) -> Sign {
        match self {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
        }
    }

    /// +1 / -1 as an i32.
    #[inline]
    pub fn delta(self) -> i32 {
        match self {
            Sign::Plus => 1,
            Sign::Minus => -1,
        }
    }

    /// The sign needed to travel from `from` to `to` along one axis, or `None`
    /// if the positions are equal.
    #[inline]
    pub fn towards(from: u16, to: u16) -> Option<Sign> {
        use std::cmp::Ordering::*;
        match from.cmp(&to) {
            Less => Some(Sign::Plus),
            Greater => Some(Sign::Minus),
            Equal => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let c = Coord::xyz(1, 2, 3);
        assert_eq!(c.ndims(), 3);
        assert_eq!(c.get(0), 1);
        assert_eq!(c.get(1), 2);
        assert_eq!(c.get(2), 3);
        assert_eq!(c.axes(), &[1, 2, 3]);
    }

    #[test]
    fn with_replaces_single_axis() {
        let c = Coord::xy(4, 7);
        let d = c.with(0, 9);
        assert_eq!(d, Coord::xy(9, 7));
        assert_eq!(c, Coord::xy(4, 7), "original untouched");
    }

    #[test]
    fn manhattan_distance() {
        assert_eq!(Coord::xyz(0, 0, 0).manhattan(&Coord::xyz(3, 4, 5)), 12);
        assert_eq!(Coord::xy(5, 5).manhattan(&Coord::xy(5, 5)), 0);
        assert_eq!(Coord::xy(7, 1).manhattan(&Coord::xy(2, 3)), 7);
    }

    #[test]
    fn hamming_distance() {
        assert_eq!(Coord::xyz(1, 2, 3).hamming(&Coord::xyz(1, 5, 3)), 1);
        assert_eq!(Coord::xyz(0, 0, 0).hamming(&Coord::xyz(1, 1, 1)), 3);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn manhattan_rejects_mixed_dims() {
        let _ = Coord::xy(0, 0).manhattan(&Coord::xyz(0, 0, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let _ = Coord::xy(0, 0).get(2);
    }

    #[test]
    fn sign_towards() {
        assert_eq!(Sign::towards(0, 5), Some(Sign::Plus));
        assert_eq!(Sign::towards(5, 0), Some(Sign::Minus));
        assert_eq!(Sign::towards(3, 3), None);
    }

    #[test]
    fn sign_flip_and_delta() {
        assert_eq!(Sign::Plus.flip(), Sign::Minus);
        assert_eq!(Sign::Minus.flip(), Sign::Plus);
        assert_eq!(Sign::Plus.delta(), 1);
        assert_eq!(Sign::Minus.delta(), -1);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", Coord::xyz(1, 2, 3)), "(1,2,3)");
    }
}
