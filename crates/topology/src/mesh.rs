//! The k-ary n-dimensional mesh — the paper's network under study.

use crate::coord::{Coord, Sign, MAX_DIMS};
use crate::ids::{ChannelId, NodeId};
use crate::Topology;
use serde::{Deserialize, Serialize};

/// An n-dimensional mesh with per-dimension radices `dims`, e.g. `[8, 8, 8]`
/// for the paper's 8×8×8 network. Nodes are numbered row-major with dimension
/// 0 varying fastest. Channels are bidirectional links modelled as a pair of
/// directed channels.
///
/// # Examples
///
/// ```
/// use wormcast_topology::{Coord, Mesh, Topology};
///
/// let mesh = Mesh::cube(8); // the paper's 512-node network
/// assert_eq!(mesh.num_nodes(), 512);
///
/// let n = mesh.node_at(&Coord::xyz(3, 4, 5));
/// assert_eq!(mesh.coord_of(n), Coord::xyz(3, 4, 5));
/// assert_eq!(mesh.distance(n, mesh.node_at(&Coord::xyz(0, 0, 0))), 12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mesh {
    dims: Vec<u16>,
    /// Row-major strides: strides[d] = product of dims[0..d].
    strides: Vec<u32>,
    num_nodes: u32,
}

impl Mesh {
    /// Build a mesh with the given per-dimension sizes.
    ///
    /// # Panics
    /// Panics if `dims` is empty, any dimension is zero, more than
    /// [`MAX_DIMS`] dimensions are requested, or the node count overflows u32.
    pub fn new(dims: &[u16]) -> Self {
        assert!(!dims.is_empty(), "mesh needs at least one dimension");
        assert!(
            dims.len() <= MAX_DIMS,
            "mesh supports at most {MAX_DIMS} dimensions"
        );
        assert!(
            dims.iter().all(|&d| d >= 1),
            "every dimension must be at least 1"
        );
        let mut strides = Vec::with_capacity(dims.len());
        let mut acc: u64 = 1;
        for &d in dims {
            strides.push(acc as u32);
            acc *= d as u64;
            assert!(acc <= u32::MAX as u64, "mesh too large for u32 node ids");
        }
        Mesh {
            dims: dims.to_vec(),
            strides,
            num_nodes: acc as u32,
        }
    }

    /// The classic square/cubic meshes used by the paper, e.g. `cube(8)` for
    /// 8×8×8.
    pub fn cube(side: u16) -> Self {
        Mesh::new(&[side, side, side])
    }

    /// A square 2D mesh.
    pub fn square(side: u16) -> Self {
        Mesh::new(&[side, side])
    }

    /// Per-dimension sizes.
    pub fn dims(&self) -> &[u16] {
        &self.dims
    }

    /// Directed channels per node (2 per dimension; edge nodes have fewer
    /// valid ones, but the id space is uniform).
    #[inline]
    fn chans_per_node(&self) -> u32 {
        2 * self.dims.len() as u32
    }

    /// The direction slot of a directed channel id: `2*dim + (0|1)`.
    #[inline]
    fn dir_slot(dim: usize, sign: Sign) -> u32 {
        2 * dim as u32
            + match sign {
                Sign::Plus => 0,
                Sign::Minus => 1,
            }
    }

    /// The directed channel leaving `from` along `dim` in direction `sign`,
    /// if that neighbour exists.
    pub fn channel(&self, from: NodeId, dim: usize, sign: Sign) -> Option<ChannelId> {
        self.neighbor(from, dim, sign)?;
        Some(ChannelId(
            from.0 * self.chans_per_node() + Self::dir_slot(dim, sign),
        ))
    }

    /// Decompose a channel id into (source node, dimension, sign).
    pub fn channel_parts(&self, ch: ChannelId) -> (NodeId, usize, Sign) {
        let per = self.chans_per_node();
        let node = NodeId(ch.0 / per);
        let slot = ch.0 % per;
        let dim = (slot / 2) as usize;
        let sign = if slot.is_multiple_of(2) {
            Sign::Plus
        } else {
            Sign::Minus
        };
        (node, dim, sign)
    }

    /// Whether `ch` denotes a physically present link (edge nodes have id
    /// slots for links that fall off the mesh boundary).
    pub fn channel_exists(&self, ch: ChannelId) -> bool {
        if ch.0 >= self.num_nodes * self.chans_per_node() {
            return false;
        }
        let (node, dim, sign) = self.channel_parts(ch);
        self.neighbor(node, dim, sign).is_some()
    }

    /// Iterate over all nodes in linear order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes).map(NodeId)
    }

    /// Iterate over all physically present directed channels.
    pub fn channels(&self) -> impl Iterator<Item = ChannelId> + '_ {
        (0..self.num_nodes * self.chans_per_node())
            .map(ChannelId)
            .filter(move |&c| self.channel_exists(c))
    }
}

impl Topology for Mesh {
    fn num_nodes(&self) -> usize {
        self.num_nodes as usize
    }

    fn ndims(&self) -> usize {
        self.dims.len()
    }

    fn dim_size(&self, dim: usize) -> u16 {
        self.dims[dim]
    }

    fn coord_of(&self, n: NodeId) -> Coord {
        assert!(n.0 < self.num_nodes, "node {n} out of range");
        let mut axes = [0u16; MAX_DIMS];
        let mut rest = n.0;
        for (d, &size) in self.dims.iter().enumerate() {
            axes[d] = (rest % size as u32) as u16;
            rest /= size as u32;
        }
        Coord::new(&axes[..self.dims.len()])
    }

    fn node_at(&self, c: &Coord) -> NodeId {
        assert_eq!(c.ndims(), self.dims.len(), "coordinate dims mismatch");
        let mut idx: u32 = 0;
        for (d, &size) in self.dims.iter().enumerate() {
            let v = c.get(d);
            assert!(v < size, "coordinate {c} outside mesh {:?}", self.dims);
            idx += v as u32 * self.strides[d];
        }
        NodeId(idx)
    }

    fn neighbor(&self, n: NodeId, dim: usize, sign: Sign) -> Option<NodeId> {
        assert!(dim < self.dims.len(), "dim {dim} out of range");
        let c = self.coord_of(n);
        let pos = c.get(dim) as i32 + sign.delta();
        if pos < 0 || pos >= self.dims[dim] as i32 {
            None
        } else {
            Some(self.node_at(&c.with(dim, pos as u16)))
        }
    }

    fn num_channels(&self) -> usize {
        (self.num_nodes * self.chans_per_node()) as usize
    }

    fn channel_between(&self, from: NodeId, to: NodeId) -> Option<ChannelId> {
        let cf = self.coord_of(from);
        let ct = self.coord_of(to);
        if cf.manhattan(&ct) != 1 {
            return None;
        }
        for d in 0..self.ndims() {
            if let Some(sign) = Sign::towards(cf.get(d), ct.get(d)) {
                return self.channel(from, d, sign);
            }
        }
        None
    }

    fn channel_endpoints(&self, ch: ChannelId) -> (NodeId, NodeId) {
        let (node, dim, sign) = self.channel_parts(ch);
        let dst = self
            .neighbor(node, dim, sign)
            .unwrap_or_else(|| panic!("channel {ch} falls off the mesh boundary"));
        (node, dst)
    }

    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        self.coord_of(a).manhattan(&self.coord_of(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_coord_roundtrip() {
        let m = Mesh::new(&[4, 3, 2]);
        assert_eq!(m.num_nodes(), 24);
        for n in m.nodes() {
            let c = m.coord_of(n);
            assert_eq!(m.node_at(&c), n);
        }
    }

    #[test]
    fn row_major_numbering() {
        let m = Mesh::new(&[4, 3]);
        assert_eq!(m.node_at(&Coord::xy(0, 0)), NodeId(0));
        assert_eq!(m.node_at(&Coord::xy(1, 0)), NodeId(1));
        assert_eq!(m.node_at(&Coord::xy(0, 1)), NodeId(4));
        assert_eq!(m.node_at(&Coord::xy(3, 2)), NodeId(11));
    }

    #[test]
    fn neighbors_interior() {
        let m = Mesh::cube(4);
        let n = m.node_at(&Coord::xyz(1, 1, 1));
        assert_eq!(
            m.neighbor(n, 0, Sign::Plus),
            Some(m.node_at(&Coord::xyz(2, 1, 1)))
        );
        assert_eq!(
            m.neighbor(n, 2, Sign::Minus),
            Some(m.node_at(&Coord::xyz(1, 1, 0)))
        );
    }

    #[test]
    fn neighbors_at_boundary_are_none() {
        let m = Mesh::square(4);
        let corner = m.node_at(&Coord::xy(0, 0));
        assert_eq!(m.neighbor(corner, 0, Sign::Minus), None);
        assert_eq!(m.neighbor(corner, 1, Sign::Minus), None);
        assert!(m.neighbor(corner, 0, Sign::Plus).is_some());
        let far = m.node_at(&Coord::xy(3, 3));
        assert_eq!(m.neighbor(far, 0, Sign::Plus), None);
        assert_eq!(m.neighbor(far, 1, Sign::Plus), None);
    }

    #[test]
    fn channel_roundtrip() {
        let m = Mesh::cube(4);
        for n in m.nodes() {
            for dim in 0..3 {
                for sign in [Sign::Plus, Sign::Minus] {
                    if let Some(ch) = m.channel(n, dim, sign) {
                        let (src, d, s) = m.channel_parts(ch);
                        assert_eq!((src, d, s), (n, dim, sign));
                        let (from, to) = m.channel_endpoints(ch);
                        assert_eq!(from, n);
                        assert_eq!(Some(to), m.neighbor(n, dim, sign));
                    }
                }
            }
        }
    }

    #[test]
    fn channel_between_adjacent() {
        let m = Mesh::square(4);
        let a = m.node_at(&Coord::xy(1, 1));
        let b = m.node_at(&Coord::xy(2, 1));
        let ch = m.channel_between(a, b).unwrap();
        assert_eq!(m.channel_endpoints(ch), (a, b));
        // Reverse direction is a distinct channel.
        let rev = m.channel_between(b, a).unwrap();
        assert_ne!(ch, rev);
        assert_eq!(m.channel_endpoints(rev), (b, a));
    }

    #[test]
    fn channel_between_non_adjacent_is_none() {
        let m = Mesh::square(4);
        let a = m.node_at(&Coord::xy(0, 0));
        let b = m.node_at(&Coord::xy(2, 0));
        assert_eq!(m.channel_between(a, b), None);
        assert_eq!(m.channel_between(a, a), None);
    }

    #[test]
    fn channel_count_matches_mesh_links() {
        // An a×b mesh has (a-1)b + a(b-1) bidirectional links = double that
        // many directed channels.
        let m = Mesh::new(&[5, 3]);
        let expect = 2 * ((4 * 3) + (5 * 2));
        assert_eq!(m.channels().count(), expect);
    }

    #[test]
    fn cube_channel_count() {
        // k^3 mesh: 3 * k^2 * (k-1) links, doubled.
        let m = Mesh::cube(4);
        assert_eq!(m.channels().count(), 2 * 3 * 16 * 3);
    }

    #[test]
    fn distance_is_manhattan() {
        let m = Mesh::cube(8);
        let a = m.node_at(&Coord::xyz(0, 0, 0));
        let b = m.node_at(&Coord::xyz(7, 7, 7));
        assert_eq!(m.distance(a, b), 21);
    }

    #[test]
    fn paper_network_sizes() {
        assert_eq!(Mesh::cube(4).num_nodes(), 64);
        assert_eq!(Mesh::cube(8).num_nodes(), 512);
        assert_eq!(Mesh::cube(10).num_nodes(), 1000);
        assert_eq!(Mesh::cube(16).num_nodes(), 4096);
        assert_eq!(Mesh::new(&[4, 4, 16]).num_nodes(), 256);
        assert_eq!(Mesh::new(&[8, 8, 16]).num_nodes(), 1024);
        assert_eq!(Mesh::new(&[16, 16, 8]).num_nodes(), 2048);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_dims_rejected() {
        let _ = Mesh::new(&[]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_dim_rejected() {
        let _ = Mesh::new(&[4, 0]);
    }

    #[test]
    #[should_panic(expected = "outside mesh")]
    fn node_at_out_of_bounds_panics() {
        let m = Mesh::square(4);
        let _ = m.node_at(&Coord::xy(4, 0));
    }
}
