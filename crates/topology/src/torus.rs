//! The k-ary n-cube (torus) — the paper's "future directions" topology.
//!
//! Identical to the mesh except that every dimension wraps around, so every
//! node has exactly `2·n` neighbours and all channel id slots are physically
//! present.

use crate::coord::{Coord, Sign, MAX_DIMS};
use crate::ids::{ChannelId, NodeId};
use crate::Topology;
use serde::{Deserialize, Serialize};

/// A k-ary n-cube with per-dimension radices `dims`. Dimensions of size 1 or
/// 2 are allowed but degenerate (a size-2 wrap link parallels the mesh link);
/// the constructor therefore requires radix ≥ 3 to keep the channel id space
/// unambiguous.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Torus {
    dims: Vec<u16>,
    strides: Vec<u32>,
    num_nodes: u32,
}

impl Torus {
    /// Build a torus with the given per-dimension radices.
    ///
    /// # Panics
    /// Panics if `dims` is empty, any radix is < 3, more than [`MAX_DIMS`]
    /// dimensions are requested, or the node count overflows u32.
    pub fn new(dims: &[u16]) -> Self {
        assert!(!dims.is_empty(), "torus needs at least one dimension");
        assert!(
            dims.len() <= MAX_DIMS,
            "torus supports at most {MAX_DIMS} dimensions"
        );
        assert!(
            dims.iter().all(|&d| d >= 3),
            "torus radix must be at least 3 so +/- wrap channels are distinct"
        );
        let mut strides = Vec::with_capacity(dims.len());
        let mut acc: u64 = 1;
        for &d in dims {
            strides.push(acc as u32);
            acc *= d as u64;
            assert!(acc <= u32::MAX as u64, "torus too large for u32 node ids");
        }
        Torus {
            dims: dims.to_vec(),
            strides,
            num_nodes: acc as u32,
        }
    }

    /// A k-ary n-cube: `n` dimensions of radix `k`.
    pub fn kary_ncube(k: u16, n: usize) -> Self {
        Torus::new(&vec![k; n])
    }

    /// Per-dimension radices.
    pub fn dims(&self) -> &[u16] {
        &self.dims
    }

    #[inline]
    fn chans_per_node(&self) -> u32 {
        2 * self.dims.len() as u32
    }

    /// The directed channel leaving `from` along `dim` in direction `sign`
    /// (always exists on a torus).
    pub fn channel(&self, from: NodeId, dim: usize, sign: Sign) -> ChannelId {
        assert!(dim < self.dims.len(), "dim {dim} out of range");
        let slot = 2 * dim as u32
            + match sign {
                Sign::Plus => 0,
                Sign::Minus => 1,
            };
        ChannelId(from.0 * self.chans_per_node() + slot)
    }

    /// Decompose a channel id into (source node, dimension, sign).
    pub fn channel_parts(&self, ch: ChannelId) -> (NodeId, usize, Sign) {
        let per = self.chans_per_node();
        let node = NodeId(ch.0 / per);
        let slot = ch.0 % per;
        let dim = (slot / 2) as usize;
        let sign = if slot.is_multiple_of(2) {
            Sign::Plus
        } else {
            Sign::Minus
        };
        (node, dim, sign)
    }

    /// Iterate over all nodes in linear order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes).map(NodeId)
    }

    /// Minimal wrap-aware distance along one dimension.
    fn dim_distance(&self, dim: usize, a: u16, b: u16) -> u32 {
        let k = self.dims[dim] as i32;
        let d = (a as i32 - b as i32).abs();
        d.min(k - d) as u32
    }
}

impl Topology for Torus {
    fn num_nodes(&self) -> usize {
        self.num_nodes as usize
    }

    fn ndims(&self) -> usize {
        self.dims.len()
    }

    fn dim_size(&self, dim: usize) -> u16 {
        self.dims[dim]
    }

    fn coord_of(&self, n: NodeId) -> Coord {
        assert!(n.0 < self.num_nodes, "node {n} out of range");
        let mut axes = [0u16; MAX_DIMS];
        let mut rest = n.0;
        for (d, &size) in self.dims.iter().enumerate() {
            axes[d] = (rest % size as u32) as u16;
            rest /= size as u32;
        }
        Coord::new(&axes[..self.dims.len()])
    }

    fn node_at(&self, c: &Coord) -> NodeId {
        assert_eq!(c.ndims(), self.dims.len(), "coordinate dims mismatch");
        let mut idx: u32 = 0;
        for (d, &size) in self.dims.iter().enumerate() {
            let v = c.get(d);
            assert!(v < size, "coordinate {c} outside torus {:?}", self.dims);
            idx += v as u32 * self.strides[d];
        }
        NodeId(idx)
    }

    fn neighbor(&self, n: NodeId, dim: usize, sign: Sign) -> Option<NodeId> {
        assert!(dim < self.dims.len(), "dim {dim} out of range");
        let c = self.coord_of(n);
        let k = self.dims[dim] as i32;
        let pos = (c.get(dim) as i32 + sign.delta()).rem_euclid(k);
        Some(self.node_at(&c.with(dim, pos as u16)))
    }

    fn num_channels(&self) -> usize {
        (self.num_nodes * self.chans_per_node()) as usize
    }

    fn channel_between(&self, from: NodeId, to: NodeId) -> Option<ChannelId> {
        let cf = self.coord_of(from);
        let ct = self.coord_of(to);
        let mut found = None;
        for d in 0..self.ndims() {
            let (a, b) = (cf.get(d), ct.get(d));
            if a == b {
                continue;
            }
            if found.is_some() {
                return None; // differs in more than one dimension
            }
            let k = self.dims[d];
            let sign = if (a + 1) % k == b {
                Sign::Plus
            } else if (b + 1) % k == a {
                Sign::Minus
            } else {
                return None; // not adjacent even with wrap
            };
            found = Some(self.channel(from, d, sign));
        }
        found
    }

    fn channel_endpoints(&self, ch: ChannelId) -> (NodeId, NodeId) {
        let (node, dim, sign) = self.channel_parts(ch);
        (
            node,
            self.neighbor(node, dim, sign).expect("torus neighbor"),
        )
    }

    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        let ca = self.coord_of(a);
        let cb = self.coord_of(b);
        (0..self.ndims())
            .map(|d| self.dim_distance(d, ca.get(d), cb.get(d)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraparound_neighbors() {
        let t = Torus::kary_ncube(4, 2);
        let corner = t.node_at(&Coord::xy(0, 0));
        assert_eq!(
            t.neighbor(corner, 0, Sign::Minus),
            Some(t.node_at(&Coord::xy(3, 0)))
        );
        assert_eq!(
            t.neighbor(corner, 1, Sign::Minus),
            Some(t.node_at(&Coord::xy(0, 3)))
        );
    }

    #[test]
    fn every_node_has_2n_neighbors() {
        let t = Torus::kary_ncube(4, 3);
        for n in t.nodes() {
            let mut count = 0;
            for d in 0..3 {
                for s in [Sign::Plus, Sign::Minus] {
                    assert!(t.neighbor(n, d, s).is_some());
                    count += 1;
                }
            }
            assert_eq!(count, 6);
        }
    }

    #[test]
    fn wrap_distance_is_minimal() {
        let t = Torus::kary_ncube(8, 1);
        let a = t.node_at(&Coord::new(&[0]));
        let b = t.node_at(&Coord::new(&[7]));
        assert_eq!(t.distance(a, b), 1, "wrap should shortcut");
        let c = t.node_at(&Coord::new(&[4]));
        assert_eq!(t.distance(a, c), 4);
    }

    #[test]
    fn channel_between_wrap_links() {
        let t = Torus::kary_ncube(4, 2);
        let a = t.node_at(&Coord::xy(3, 1));
        let b = t.node_at(&Coord::xy(0, 1));
        let ch = t.channel_between(a, b).unwrap();
        assert_eq!(t.channel_endpoints(ch), (a, b));
        let (_, dim, sign) = t.channel_parts(ch);
        assert_eq!((dim, sign), (0, Sign::Plus));
    }

    #[test]
    fn channel_between_diagonal_is_none() {
        let t = Torus::kary_ncube(4, 2);
        let a = t.node_at(&Coord::xy(0, 0));
        let b = t.node_at(&Coord::xy(1, 1));
        assert_eq!(t.channel_between(a, b), None);
    }

    #[test]
    fn coord_roundtrip() {
        let t = Torus::new(&[3, 5, 4]);
        for n in t.nodes() {
            assert_eq!(t.node_at(&t.coord_of(n)), n);
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn small_radix_rejected() {
        let _ = Torus::new(&[2, 4]);
    }

    #[test]
    fn all_channel_slots_valid() {
        let t = Torus::kary_ncube(3, 2);
        assert_eq!(t.num_channels(), 9 * 4);
        for c in 0..t.num_channels() {
            let (from, to) = t.channel_endpoints(ChannelId(c as u32));
            assert_ne!(from, to);
        }
    }
}
