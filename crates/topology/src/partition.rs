//! Mesh partitioning helpers used by the broadcast algorithms.
//!
//! The DB algorithm partitions the mesh into row/column partitioning sets and
//! works corner-to-corner; the AB algorithm treats a 3D mesh as a stack of 2D
//! planes, each served through two opposite corners; RD recursively halves
//! partitions. These are the pieces of coordinate algebra they all share.

use crate::coord::{Coord, Sign};
use crate::ids::{ChannelId, NodeId};
use crate::mesh::Mesh;
use crate::Topology;
use std::ops::Range;

/// A 2D sub-mesh of a higher-dimensional mesh, obtained by fixing every
/// dimension except two. For the paper's 3D networks, planes fix the Z
/// dimension: `Plane::of_3d(mesh, z)`.
///
/// # Examples
///
/// ```
/// use wormcast_topology::{Coord, Mesh, Plane};
///
/// let mesh = Mesh::cube(8);
/// let plane = Plane::of_3d(&mesh, 3);
/// let near = plane.nearest_corner(&mesh, &Coord::xyz(6, 7, 3));
/// assert_eq!(near, Coord::xyz(7, 7, 3));
/// assert_eq!(plane.opposite_corner(&mesh, &near), Coord::xyz(0, 0, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plane {
    /// The dimension index used as the plane's local X axis.
    pub dim_x: usize,
    /// The dimension index used as the plane's local Y axis.
    pub dim_y: usize,
    /// A template coordinate carrying the fixed positions of all other dims.
    pub fixed: Coord,
}

impl Plane {
    /// The plane at height `z` of a 3D mesh (X–Y plane, Z fixed).
    ///
    /// # Panics
    /// Panics if the mesh is not 3-dimensional or `z` is out of range.
    pub fn of_3d(mesh: &Mesh, z: u16) -> Plane {
        assert_eq!(mesh.ndims(), 3, "Plane::of_3d requires a 3D mesh");
        assert!(z < mesh.dim_size(2), "z={z} out of range");
        Plane {
            dim_x: 0,
            dim_y: 1,
            fixed: Coord::xyz(0, 0, z),
        }
    }

    /// The whole of a 2D mesh viewed as a single plane.
    ///
    /// # Panics
    /// Panics if the mesh is not 2-dimensional.
    pub fn whole_2d(mesh: &Mesh) -> Plane {
        assert_eq!(mesh.ndims(), 2, "Plane::whole_2d requires a 2D mesh");
        Plane {
            dim_x: 0,
            dim_y: 1,
            fixed: Coord::xy(0, 0),
        }
    }

    /// The mesh coordinate of plane-local position `(x, y)`.
    pub fn at(&self, x: u16, y: u16) -> Coord {
        self.fixed.with(self.dim_x, x).with(self.dim_y, y)
    }

    /// Plane width (extent of the local X axis) in `mesh`.
    pub fn width(&self, mesh: &Mesh) -> u16 {
        mesh.dim_size(self.dim_x)
    }

    /// Plane height (extent of the local Y axis) in `mesh`.
    pub fn height(&self, mesh: &Mesh) -> u16 {
        mesh.dim_size(self.dim_y)
    }

    /// All nodes of the plane in row-major (x fastest) order.
    pub fn nodes(&self, mesh: &Mesh) -> Vec<NodeId> {
        let (w, h) = (self.width(mesh), self.height(mesh));
        let mut out = Vec::with_capacity(w as usize * h as usize);
        for y in 0..h {
            for x in 0..w {
                out.push(mesh.node_at(&self.at(x, y)));
            }
        }
        out
    }

    /// The four corner coordinates in order: (0,0), (w−1,0), (0,h−1), (w−1,h−1).
    pub fn corners(&self, mesh: &Mesh) -> [Coord; 4] {
        let (w, h) = (self.width(mesh) - 1, self.height(mesh) - 1);
        [self.at(0, 0), self.at(w, 0), self.at(0, h), self.at(w, h)]
    }

    /// The corner of this plane closest (Manhattan) to `from`, breaking ties
    /// towards the (0,0) corner for determinism.
    pub fn nearest_corner(&self, mesh: &Mesh, from: &Coord) -> Coord {
        *self
            .corners(mesh)
            .iter()
            .min_by_key(|c| from.manhattan(c))
            .expect("plane has corners")
    }

    /// The corner diagonally opposite `corner`.
    ///
    /// # Panics
    /// Panics if `corner` is not one of this plane's corners.
    pub fn opposite_corner(&self, mesh: &Mesh, corner: &Coord) -> Coord {
        let (w, h) = (self.width(mesh) - 1, self.height(mesh) - 1);
        let x = corner.get(self.dim_x);
        let y = corner.get(self.dim_y);
        assert!(
            (x == 0 || x == w) && (y == 0 || y == h),
            "{corner} is not a corner of the plane"
        );
        self.at(w - x, h - y)
    }
}

/// The node positions of a 1D line through `through`, varying dimension `dim`
/// over its full extent, in increasing-coordinate order.
pub fn line_nodes(mesh: &Mesh, through: &Coord, dim: usize) -> Vec<NodeId> {
    (0..mesh.dim_size(dim))
        .map(|v| mesh.node_at(&through.with(dim, v)))
        .collect()
}

/// Split the positions `0..len` into the two halves used by recursive
/// doubling: lower `[0, len/2)` and upper `[len/2, len)`. For odd `len` the
/// upper half is the larger.
pub fn halves(len: u16) -> (std::ops::Range<u16>, std::ops::Range<u16>) {
    let mid = len / 2;
    (0..mid, mid..len)
}

/// The corner nodes of an entire mesh (2^n of them), in lexicographic
/// low/high order per dimension.
pub fn mesh_corners(mesh: &Mesh) -> Vec<Coord> {
    let n = mesh.ndims();
    let mut out = Vec::with_capacity(1 << n);
    for mask in 0u32..(1 << n) {
        let axes: Vec<u16> = (0..n)
            .map(|d| {
                if mask & (1 << d) == 0 {
                    0
                } else {
                    mesh.dim_size(d) - 1
                }
            })
            .collect();
        out.push(Coord::new(&axes));
    }
    out
}

/// Walk from `from` towards `to` along a single dimension, returning each
/// intermediate coordinate including `to` but excluding `from`. Used to build
/// coded paths.
///
/// # Panics
/// Panics if `from` and `to` differ in more than one dimension.
pub fn straight_walk(from: &Coord, to: &Coord) -> Vec<Coord> {
    assert!(
        from.hamming(to) <= 1,
        "straight_walk requires single-dimension movement: {from} -> {to}"
    );
    let mut out = Vec::new();
    if from == to {
        return out;
    }
    let dim = (0..from.ndims())
        .find(|&d| from.get(d) != to.get(d))
        .unwrap();
    let sign = Sign::towards(from.get(dim), to.get(dim)).unwrap();
    let mut pos = from.get(dim) as i32;
    let end = to.get(dim) as i32;
    while pos != end {
        pos += sign.delta();
        out.push(from.with(dim, pos as u16));
    }
    out
}

/// A spatial partition of a topology's node-index space into contiguous
/// slabs along its last axis, one slab per shard.
///
/// Meshes and tori number nodes row-major with dimension 0 fastest, so the
/// set of nodes whose last coordinate lies in `[z0, z1)` is exactly the
/// index range `[z0 * plane, z1 * plane)` where `plane` is the product of
/// all lower-dimension extents. Channels are numbered
/// `from * chans_per_node + slot`, so a contiguous node slab also owns a
/// contiguous channel range — the sharded engine's per-shard arenas index
/// both with a plain offset subtraction.
///
/// A channel is *owned* by the shard of its source node; a channel whose
/// endpoints fall in different shards is a *boundary* channel. With slab
/// partitioning, boundary channels are exactly the last-axis hops across a
/// slab face (plus the last-axis wraparound links on a torus).
///
/// # Examples
///
/// ```
/// use wormcast_topology::{Mesh, ShardMap, Topology};
///
/// let mesh = Mesh::new(&[4, 4, 8]);
/// let map = ShardMap::slabs(&mesh, 4).unwrap();
/// assert_eq!(map.num_shards(), 4);
/// assert_eq!(map.node_range(0), 0..32);
/// assert_eq!(map.shard_of_node(wormcast_topology::NodeId(33)), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    /// `starts[s]` is the first node index of shard `s`; a final sentinel
    /// entry holds the total node count, so `starts.len() == shards + 1`.
    starts: Vec<u32>,
    /// Slab extents along the partition axis, `[z0, z1)` per shard.
    axis_ranges: Vec<Range<u16>>,
    /// The partitioned dimension (always the topology's last axis).
    axis: usize,
}

impl ShardMap {
    /// Partition `topo` into `shards` contiguous slabs along its last axis.
    ///
    /// Returns `None` when `shards` is zero or exceeds the last-axis extent
    /// (which would force a zero-size slab). Slab thicknesses differ by at
    /// most one: the first `axis_len % shards` shards take the extra layer.
    pub fn slabs<T: Topology>(topo: &T, shards: usize) -> Option<ShardMap> {
        let axis = topo.ndims() - 1;
        let axis_len = topo.dim_size(axis) as usize;
        if shards == 0 || shards > axis_len {
            return None;
        }
        let plane = (topo.num_nodes() / axis_len) as u32;
        let (base, extra) = (axis_len / shards, axis_len % shards);
        let mut starts = Vec::with_capacity(shards + 1);
        let mut axis_ranges = Vec::with_capacity(shards);
        let mut z = 0usize;
        for s in 0..shards {
            starts.push(z as u32 * plane);
            let thick = base + usize::from(s < extra);
            axis_ranges.push(z as u16..(z + thick) as u16);
            z += thick;
        }
        starts.push(topo.num_nodes() as u32);
        Some(ShardMap {
            starts,
            axis_ranges,
            axis,
        })
    }

    /// Number of shards in the partition.
    pub fn num_shards(&self) -> usize {
        self.starts.len() - 1
    }

    /// The shard owning node `n`.
    pub fn shard_of_node(&self, n: NodeId) -> usize {
        debug_assert!(n.0 < *self.starts.last().unwrap());
        self.starts.partition_point(|&s| s <= n.0) - 1
    }

    /// The contiguous node-index range of shard `s`.
    pub fn node_range(&self, s: usize) -> Range<u32> {
        self.starts[s]..self.starts[s + 1]
    }

    /// The last-axis coordinate range `[z0, z1)` of shard `s`.
    pub fn axis_range(&self, s: usize) -> Range<u16> {
        self.axis_ranges[s].clone()
    }

    /// The partitioned dimension index.
    pub fn axis(&self) -> usize {
        self.axis
    }

    /// The shard owning channel `ch` — the shard of its source node.
    pub fn shard_of_channel<T: Topology>(&self, topo: &T, ch: ChannelId) -> usize {
        self.shard_of_node(topo.channel_endpoints(ch).0)
    }

    /// Whether `ch` crosses a shard boundary (its endpoints fall in
    /// different shards).
    pub fn is_boundary<T: Topology>(&self, topo: &T, ch: ChannelId) -> bool {
        let (from, to) = topo.channel_endpoints(ch);
        self.shard_of_node(from) != self.shard_of_node(to)
    }

    /// All boundary channels leaving shard `s`, as `(channel, dest_shard)`,
    /// in channel-id order. Discovered by scanning the shard's own channel
    /// range, so two adjacent shards find the same cut from either side
    /// (each lists its outgoing half of the opposing channel pair).
    pub fn boundary_channels_of<T: Topology>(&self, topo: &T, s: usize) -> Vec<(ChannelId, usize)> {
        let mut out = Vec::new();
        for raw in self.node_range(s) {
            let n = NodeId(raw);
            for dim in 0..topo.ndims() {
                for sign in [Sign::Plus, Sign::Minus] {
                    let Some(to) = topo.neighbor(n, dim, sign) else {
                        continue;
                    };
                    let dest = self.shard_of_node(to);
                    if dest != s {
                        let ch = topo
                            .channel_between(n, to)
                            .expect("neighbor implies channel");
                        out.push((ch, dest));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_of_3d_extents() {
        let m = Mesh::new(&[4, 6, 3]);
        let p = Plane::of_3d(&m, 2);
        assert_eq!(p.width(&m), 4);
        assert_eq!(p.height(&m), 6);
        assert_eq!(p.nodes(&m).len(), 24);
        // every node has z == 2
        for n in p.nodes(&m) {
            assert_eq!(m.coord_of(n).get(2), 2);
        }
    }

    #[test]
    fn plane_corners() {
        let m = Mesh::new(&[4, 6, 3]);
        let p = Plane::of_3d(&m, 1);
        let cs = p.corners(&m);
        assert_eq!(cs[0], Coord::xyz(0, 0, 1));
        assert_eq!(cs[1], Coord::xyz(3, 0, 1));
        assert_eq!(cs[2], Coord::xyz(0, 5, 1));
        assert_eq!(cs[3], Coord::xyz(3, 5, 1));
    }

    #[test]
    fn nearest_and_opposite_corner() {
        let m = Mesh::cube(8);
        let p = Plane::of_3d(&m, 0);
        let near = p.nearest_corner(&m, &Coord::xyz(1, 6, 0));
        assert_eq!(near, Coord::xyz(0, 7, 0));
        assert_eq!(p.opposite_corner(&m, &near), Coord::xyz(7, 0, 0));
    }

    #[test]
    fn nearest_corner_tie_breaks_deterministically() {
        let m = Mesh::new(&[5, 5, 1]);
        let p = Plane::of_3d(&m, 0);
        // Centre is equidistant from all four corners; (0,0) wins.
        assert_eq!(p.nearest_corner(&m, &Coord::xyz(2, 2, 0)), p.at(0, 0));
    }

    #[test]
    #[should_panic(expected = "not a corner")]
    fn opposite_of_non_corner_panics() {
        let m = Mesh::cube(4);
        let p = Plane::of_3d(&m, 0);
        let _ = p.opposite_corner(&m, &Coord::xyz(1, 1, 0));
    }

    #[test]
    fn line_nodes_order() {
        let m = Mesh::new(&[4, 3]);
        let row = line_nodes(&m, &Coord::xy(0, 1), 0);
        let xs: Vec<u16> = row.iter().map(|&n| m.coord_of(n).get(0)).collect();
        assert_eq!(xs, vec![0, 1, 2, 3]);
        assert!(row.iter().all(|&n| m.coord_of(n).get(1) == 1));
    }

    #[test]
    fn halves_split() {
        assert_eq!(halves(8), (0..4, 4..8));
        assert_eq!(halves(7), (0..3, 3..7));
        assert_eq!(halves(1), (0..0, 0..1));
    }

    #[test]
    fn mesh_corners_count() {
        let m = Mesh::cube(4);
        let cs = mesh_corners(&m);
        assert_eq!(cs.len(), 8);
        assert!(cs.contains(&Coord::xyz(0, 0, 0)));
        assert!(cs.contains(&Coord::xyz(3, 3, 3)));
    }

    #[test]
    fn straight_walk_forward_and_back() {
        let a = Coord::xy(1, 2);
        let b = Coord::xy(4, 2);
        let w = straight_walk(&a, &b);
        assert_eq!(w, vec![Coord::xy(2, 2), Coord::xy(3, 2), Coord::xy(4, 2)]);
        let back = straight_walk(&b, &a);
        assert_eq!(
            back,
            vec![Coord::xy(3, 2), Coord::xy(2, 2), Coord::xy(1, 2)]
        );
    }

    #[test]
    fn straight_walk_empty_when_equal() {
        let a = Coord::xy(1, 1);
        assert!(straight_walk(&a, &a).is_empty());
    }

    #[test]
    #[should_panic(expected = "single-dimension")]
    fn straight_walk_rejects_diagonal() {
        let _ = straight_walk(&Coord::xy(0, 0), &Coord::xy(1, 1));
    }

    #[test]
    fn shard_map_rejects_degenerate_counts() {
        let m = Mesh::new(&[4, 4, 3]);
        assert!(ShardMap::slabs(&m, 0).is_none());
        assert!(ShardMap::slabs(&m, 4).is_none()); // axis is only 3 deep
        assert!(ShardMap::slabs(&m, 3).is_some());
    }

    #[test]
    fn shard_map_covers_every_node_once() {
        let m = Mesh::new(&[4, 3, 5]);
        let map = ShardMap::slabs(&m, 3).unwrap();
        let mut seen = vec![0u8; m.num_nodes()];
        for s in 0..map.num_shards() {
            for n in map.node_range(s) {
                seen[n as usize] += 1;
                assert_eq!(map.shard_of_node(NodeId(n)), s);
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
        // 5 layers over 3 shards: thicknesses 2, 2, 1.
        assert_eq!(map.axis_range(0), 0..2);
        assert_eq!(map.axis_range(1), 2..4);
        assert_eq!(map.axis_range(2), 4..5);
    }

    #[test]
    fn shard_map_single_shard_is_whole_topology() {
        let m = Mesh::new(&[4, 4, 4]);
        let map = ShardMap::slabs(&m, 1).unwrap();
        assert_eq!(map.node_range(0), 0..m.num_nodes() as u32);
        for s in 0..1 {
            assert!(map.boundary_channels_of(&m, s).is_empty());
        }
    }

    #[test]
    fn shard_map_boundary_channels_are_last_axis_faces() {
        let m = Mesh::new(&[3, 3, 4]);
        let map = ShardMap::slabs(&m, 2).unwrap();
        let out0 = map.boundary_channels_of(&m, 0);
        // One +Z channel per node on the z=1 face: 3×3 of them.
        assert_eq!(out0.len(), 9);
        for &(ch, dest) in &out0 {
            assert_eq!(dest, 1);
            assert!(map.is_boundary(&m, ch));
            let (from, to) = m.channel_endpoints(ch);
            assert_eq!(m.coord_of(from).get(2), 1);
            assert_eq!(m.coord_of(to).get(2), 2);
        }
        // Symmetric from the far side: shard 1 sends the -Z halves back.
        let out1 = map.boundary_channels_of(&m, 1);
        assert_eq!(out1.len(), 9);
        for &(ch, dest) in &out1 {
            assert_eq!(dest, 0);
            let (from, to) = m.channel_endpoints(ch);
            assert_eq!(m.coord_of(from).get(2), 2);
            assert_eq!(m.coord_of(to).get(2), 1);
        }
    }

    #[test]
    fn shard_map_torus_wraparound_is_boundary() {
        use crate::Torus;
        let t = Torus::new(&[3, 4]);
        let map = ShardMap::slabs(&t, 2).unwrap();
        // Shard 0 owns y∈{0,1}: its boundary cut is the y=1→2 face plus the
        // y=0→3 wraparound, 3 channels each.
        let out0 = map.boundary_channels_of(&t, 0);
        assert_eq!(out0.len(), 6);
        assert!(out0.iter().all(|&(_, d)| d == 1));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Every node of an arbitrary mesh belongs to exactly one shard, the
        /// shard node ranges tile `0..num_nodes` contiguously, and the axis
        /// ranges tile the partition axis.
        #[test]
        fn slabs_cover_every_node_exactly_once(
            x in 1u16..6, y in 1u16..6, z in 1u16..8, shards in 1usize..8,
        ) {
            use proptest::prelude::{prop_assert, prop_assert_eq, prop_assume};
            let m = Mesh::new(&[x, y, z]);
            prop_assume!(shards <= z as usize);
            let map = ShardMap::slabs(&m, shards).expect("valid shard count");
            prop_assert_eq!(map.num_shards(), shards);
            let mut next = 0u32;
            let mut next_layer = 0u16;
            for s in 0..shards {
                let nr = map.node_range(s);
                prop_assert_eq!(nr.start, next, "node ranges must tile");
                prop_assert!(nr.end > nr.start, "every shard owns a slab");
                next = nr.end;
                let ar = map.axis_range(s);
                prop_assert_eq!(ar.start, next_layer, "axis ranges must tile");
                next_layer = ar.end;
                for n in nr {
                    prop_assert_eq!(map.shard_of_node(NodeId(n)), s);
                }
            }
            prop_assert_eq!(next as usize, m.num_nodes());
            prop_assert_eq!(next_layer, z);
        }

        /// Boundary discovery is symmetric: shard A lists a channel into B
        /// exactly when B lists the reverse channel into A, every listed
        /// channel leaves the listing shard, and interior channels are never
        /// listed.
        #[test]
        fn boundary_channels_are_symmetric(
            x in 1u16..5, y in 1u16..5, z in 2u16..8, shards in 2usize..8,
        ) {
            use proptest::prelude::{prop_assert, prop_assert_eq, prop_assume};
            use std::collections::BTreeSet;
            let m = Mesh::new(&[x, y, z]);
            prop_assume!(shards <= z as usize);
            let map = ShardMap::slabs(&m, shards).expect("valid shard count");
            let mut listed = BTreeSet::new();
            for s in 0..shards {
                for (ch, dest) in map.boundary_channels_of(&m, s) {
                    let (from, to) = m.channel_endpoints(ch);
                    prop_assert_eq!(map.shard_of_node(from), s);
                    prop_assert_eq!(map.shard_of_node(to), dest);
                    prop_assert!(s != dest, "boundary channels cross shards");
                    prop_assert!(map.is_boundary(&m, ch));
                    prop_assert!(listed.insert(ch.0), "channel listed twice");
                    // The reverse hop is someone's boundary channel back.
                    let back = m.channel_between(to, from).expect("mesh links are bidirectional");
                    prop_assert!(
                        map.boundary_channels_of(&m, dest).iter().any(|&(c, d)| c == back && d == s),
                        "reverse channel missing from the far shard's list"
                    );
                }
            }
            // Completeness: every cross-shard channel was listed by its
            // owner (enumerate physically present channels via adjacency —
            // the dense id space has absent slots on mesh boundaries).
            for n in 0..m.num_nodes() as u32 {
                let n = NodeId(n);
                for dim in 0..m.ndims() {
                    for sign in [Sign::Plus, Sign::Minus] {
                        let Some(to) = m.neighbor(n, dim, sign) else { continue };
                        let ch = m.channel_between(n, to).expect("neighbor implies channel");
                        let crosses = map.shard_of_node(n) != map.shard_of_node(to);
                        prop_assert_eq!(map.is_boundary(&m, ch), crosses);
                        prop_assert_eq!(
                            listed.contains(&ch.0),
                            crosses,
                            "boundary listing incomplete or overfull for c{}",
                            ch.0
                        );
                    }
                }
            }
        }

        /// One shard is the identity partition: everything in shard 0, the
        /// full node range, and no boundary channels.
        #[test]
        fn single_shard_is_identity(x in 1u16..5, y in 1u16..5, z in 1u16..8) {
            use proptest::prelude::{prop_assert, prop_assert_eq};
            let m = Mesh::new(&[x, y, z]);
            let map = ShardMap::slabs(&m, 1).expect("one shard always fits");
            prop_assert_eq!(map.num_shards(), 1);
            prop_assert_eq!(map.node_range(0), 0..m.num_nodes() as u32);
            prop_assert_eq!(map.axis_range(0), 0..z);
            for n in 0..m.num_nodes() as u32 {
                prop_assert_eq!(map.shard_of_node(NodeId(n)), 0);
            }
            prop_assert!(map.boundary_channels_of(&m, 0).is_empty());
            for n in 0..m.num_nodes() as u32 {
                let n = NodeId(n);
                for dim in 0..m.ndims() {
                    for sign in [Sign::Plus, Sign::Minus] {
                        let Some(to) = m.neighbor(n, dim, sign) else { continue };
                        let ch = m.channel_between(n, to).expect("neighbor implies channel");
                        prop_assert!(!map.is_boundary(&m, ch));
                    }
                }
            }
        }
    }
}
