//! Mesh partitioning helpers used by the broadcast algorithms.
//!
//! The DB algorithm partitions the mesh into row/column partitioning sets and
//! works corner-to-corner; the AB algorithm treats a 3D mesh as a stack of 2D
//! planes, each served through two opposite corners; RD recursively halves
//! partitions. These are the pieces of coordinate algebra they all share.

use crate::coord::{Coord, Sign};
use crate::ids::NodeId;
use crate::mesh::Mesh;
use crate::Topology;

/// A 2D sub-mesh of a higher-dimensional mesh, obtained by fixing every
/// dimension except two. For the paper's 3D networks, planes fix the Z
/// dimension: `Plane::of_3d(mesh, z)`.
///
/// # Examples
///
/// ```
/// use wormcast_topology::{Coord, Mesh, Plane};
///
/// let mesh = Mesh::cube(8);
/// let plane = Plane::of_3d(&mesh, 3);
/// let near = plane.nearest_corner(&mesh, &Coord::xyz(6, 7, 3));
/// assert_eq!(near, Coord::xyz(7, 7, 3));
/// assert_eq!(plane.opposite_corner(&mesh, &near), Coord::xyz(0, 0, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plane {
    /// The dimension index used as the plane's local X axis.
    pub dim_x: usize,
    /// The dimension index used as the plane's local Y axis.
    pub dim_y: usize,
    /// A template coordinate carrying the fixed positions of all other dims.
    pub fixed: Coord,
}

impl Plane {
    /// The plane at height `z` of a 3D mesh (X–Y plane, Z fixed).
    ///
    /// # Panics
    /// Panics if the mesh is not 3-dimensional or `z` is out of range.
    pub fn of_3d(mesh: &Mesh, z: u16) -> Plane {
        assert_eq!(mesh.ndims(), 3, "Plane::of_3d requires a 3D mesh");
        assert!(z < mesh.dim_size(2), "z={z} out of range");
        Plane {
            dim_x: 0,
            dim_y: 1,
            fixed: Coord::xyz(0, 0, z),
        }
    }

    /// The whole of a 2D mesh viewed as a single plane.
    ///
    /// # Panics
    /// Panics if the mesh is not 2-dimensional.
    pub fn whole_2d(mesh: &Mesh) -> Plane {
        assert_eq!(mesh.ndims(), 2, "Plane::whole_2d requires a 2D mesh");
        Plane {
            dim_x: 0,
            dim_y: 1,
            fixed: Coord::xy(0, 0),
        }
    }

    /// The mesh coordinate of plane-local position `(x, y)`.
    pub fn at(&self, x: u16, y: u16) -> Coord {
        self.fixed.with(self.dim_x, x).with(self.dim_y, y)
    }

    /// Plane width (extent of the local X axis) in `mesh`.
    pub fn width(&self, mesh: &Mesh) -> u16 {
        mesh.dim_size(self.dim_x)
    }

    /// Plane height (extent of the local Y axis) in `mesh`.
    pub fn height(&self, mesh: &Mesh) -> u16 {
        mesh.dim_size(self.dim_y)
    }

    /// All nodes of the plane in row-major (x fastest) order.
    pub fn nodes(&self, mesh: &Mesh) -> Vec<NodeId> {
        let (w, h) = (self.width(mesh), self.height(mesh));
        let mut out = Vec::with_capacity(w as usize * h as usize);
        for y in 0..h {
            for x in 0..w {
                out.push(mesh.node_at(&self.at(x, y)));
            }
        }
        out
    }

    /// The four corner coordinates in order: (0,0), (w−1,0), (0,h−1), (w−1,h−1).
    pub fn corners(&self, mesh: &Mesh) -> [Coord; 4] {
        let (w, h) = (self.width(mesh) - 1, self.height(mesh) - 1);
        [self.at(0, 0), self.at(w, 0), self.at(0, h), self.at(w, h)]
    }

    /// The corner of this plane closest (Manhattan) to `from`, breaking ties
    /// towards the (0,0) corner for determinism.
    pub fn nearest_corner(&self, mesh: &Mesh, from: &Coord) -> Coord {
        *self
            .corners(mesh)
            .iter()
            .min_by_key(|c| from.manhattan(c))
            .expect("plane has corners")
    }

    /// The corner diagonally opposite `corner`.
    ///
    /// # Panics
    /// Panics if `corner` is not one of this plane's corners.
    pub fn opposite_corner(&self, mesh: &Mesh, corner: &Coord) -> Coord {
        let (w, h) = (self.width(mesh) - 1, self.height(mesh) - 1);
        let x = corner.get(self.dim_x);
        let y = corner.get(self.dim_y);
        assert!(
            (x == 0 || x == w) && (y == 0 || y == h),
            "{corner} is not a corner of the plane"
        );
        self.at(w - x, h - y)
    }
}

/// The node positions of a 1D line through `through`, varying dimension `dim`
/// over its full extent, in increasing-coordinate order.
pub fn line_nodes(mesh: &Mesh, through: &Coord, dim: usize) -> Vec<NodeId> {
    (0..mesh.dim_size(dim))
        .map(|v| mesh.node_at(&through.with(dim, v)))
        .collect()
}

/// Split the positions `0..len` into the two halves used by recursive
/// doubling: lower `[0, len/2)` and upper `[len/2, len)`. For odd `len` the
/// upper half is the larger.
pub fn halves(len: u16) -> (std::ops::Range<u16>, std::ops::Range<u16>) {
    let mid = len / 2;
    (0..mid, mid..len)
}

/// The corner nodes of an entire mesh (2^n of them), in lexicographic
/// low/high order per dimension.
pub fn mesh_corners(mesh: &Mesh) -> Vec<Coord> {
    let n = mesh.ndims();
    let mut out = Vec::with_capacity(1 << n);
    for mask in 0u32..(1 << n) {
        let axes: Vec<u16> = (0..n)
            .map(|d| {
                if mask & (1 << d) == 0 {
                    0
                } else {
                    mesh.dim_size(d) - 1
                }
            })
            .collect();
        out.push(Coord::new(&axes));
    }
    out
}

/// Walk from `from` towards `to` along a single dimension, returning each
/// intermediate coordinate including `to` but excluding `from`. Used to build
/// coded paths.
///
/// # Panics
/// Panics if `from` and `to` differ in more than one dimension.
pub fn straight_walk(from: &Coord, to: &Coord) -> Vec<Coord> {
    assert!(
        from.hamming(to) <= 1,
        "straight_walk requires single-dimension movement: {from} -> {to}"
    );
    let mut out = Vec::new();
    if from == to {
        return out;
    }
    let dim = (0..from.ndims())
        .find(|&d| from.get(d) != to.get(d))
        .unwrap();
    let sign = Sign::towards(from.get(dim), to.get(dim)).unwrap();
    let mut pos = from.get(dim) as i32;
    let end = to.get(dim) as i32;
    while pos != end {
        pos += sign.delta();
        out.push(from.with(dim, pos as u16));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_of_3d_extents() {
        let m = Mesh::new(&[4, 6, 3]);
        let p = Plane::of_3d(&m, 2);
        assert_eq!(p.width(&m), 4);
        assert_eq!(p.height(&m), 6);
        assert_eq!(p.nodes(&m).len(), 24);
        // every node has z == 2
        for n in p.nodes(&m) {
            assert_eq!(m.coord_of(n).get(2), 2);
        }
    }

    #[test]
    fn plane_corners() {
        let m = Mesh::new(&[4, 6, 3]);
        let p = Plane::of_3d(&m, 1);
        let cs = p.corners(&m);
        assert_eq!(cs[0], Coord::xyz(0, 0, 1));
        assert_eq!(cs[1], Coord::xyz(3, 0, 1));
        assert_eq!(cs[2], Coord::xyz(0, 5, 1));
        assert_eq!(cs[3], Coord::xyz(3, 5, 1));
    }

    #[test]
    fn nearest_and_opposite_corner() {
        let m = Mesh::cube(8);
        let p = Plane::of_3d(&m, 0);
        let near = p.nearest_corner(&m, &Coord::xyz(1, 6, 0));
        assert_eq!(near, Coord::xyz(0, 7, 0));
        assert_eq!(p.opposite_corner(&m, &near), Coord::xyz(7, 0, 0));
    }

    #[test]
    fn nearest_corner_tie_breaks_deterministically() {
        let m = Mesh::new(&[5, 5, 1]);
        let p = Plane::of_3d(&m, 0);
        // Centre is equidistant from all four corners; (0,0) wins.
        assert_eq!(p.nearest_corner(&m, &Coord::xyz(2, 2, 0)), p.at(0, 0));
    }

    #[test]
    #[should_panic(expected = "not a corner")]
    fn opposite_of_non_corner_panics() {
        let m = Mesh::cube(4);
        let p = Plane::of_3d(&m, 0);
        let _ = p.opposite_corner(&m, &Coord::xyz(1, 1, 0));
    }

    #[test]
    fn line_nodes_order() {
        let m = Mesh::new(&[4, 3]);
        let row = line_nodes(&m, &Coord::xy(0, 1), 0);
        let xs: Vec<u16> = row.iter().map(|&n| m.coord_of(n).get(0)).collect();
        assert_eq!(xs, vec![0, 1, 2, 3]);
        assert!(row.iter().all(|&n| m.coord_of(n).get(1) == 1));
    }

    #[test]
    fn halves_split() {
        assert_eq!(halves(8), (0..4, 4..8));
        assert_eq!(halves(7), (0..3, 3..7));
        assert_eq!(halves(1), (0..0, 0..1));
    }

    #[test]
    fn mesh_corners_count() {
        let m = Mesh::cube(4);
        let cs = mesh_corners(&m);
        assert_eq!(cs.len(), 8);
        assert!(cs.contains(&Coord::xyz(0, 0, 0)));
        assert!(cs.contains(&Coord::xyz(3, 3, 3)));
    }

    #[test]
    fn straight_walk_forward_and_back() {
        let a = Coord::xy(1, 2);
        let b = Coord::xy(4, 2);
        let w = straight_walk(&a, &b);
        assert_eq!(w, vec![Coord::xy(2, 2), Coord::xy(3, 2), Coord::xy(4, 2)]);
        let back = straight_walk(&b, &a);
        assert_eq!(
            back,
            vec![Coord::xy(3, 2), Coord::xy(2, 2), Coord::xy(1, 2)]
        );
    }

    #[test]
    fn straight_walk_empty_when_equal() {
        let a = Coord::xy(1, 1);
        assert!(straight_walk(&a, &a).is_empty());
    }

    #[test]
    #[should_panic(expected = "single-dimension")]
    fn straight_walk_rejects_diagonal() {
        let _ = straight_walk(&Coord::xy(0, 0), &Coord::xy(1, 1));
    }
}
