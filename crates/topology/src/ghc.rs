//! The generalized hypercube (GHC) — the paper's second "future directions"
//! topology.
//!
//! In a GHC with radices `(m_1, …, m_n)`, two nodes are adjacent iff their
//! coordinates differ in exactly one dimension — in *any* amount, i.e. each
//! dimension is a complete graph K_{m_d}. Every node therefore has
//! `Σ (m_d − 1)` neighbours and any destination is reachable in at most `n`
//! hops (one per differing dimension).

use crate::coord::{Coord, Sign, MAX_DIMS};
use crate::ids::{ChannelId, NodeId};
use crate::Topology;
use serde::{Deserialize, Serialize};

/// A generalized hypercube with per-dimension radices `dims`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeneralizedHypercube {
    dims: Vec<u16>,
    strides: Vec<u32>,
    num_nodes: u32,
    /// Channel-offset of the first channel of each dimension within a node's
    /// channel block; `dim_offsets[d] = Σ_{e<d} (dims[e] − 1)`.
    dim_offsets: Vec<u32>,
    chans_per_node: u32,
}

impl GeneralizedHypercube {
    /// Build a GHC with the given per-dimension radices.
    ///
    /// # Panics
    /// Panics if `dims` is empty, any radix is < 2, more than [`MAX_DIMS`]
    /// dimensions are requested, or the node count overflows u32.
    pub fn new(dims: &[u16]) -> Self {
        assert!(!dims.is_empty(), "GHC needs at least one dimension");
        assert!(
            dims.len() <= MAX_DIMS,
            "GHC supports at most {MAX_DIMS} dimensions"
        );
        assert!(dims.iter().all(|&d| d >= 2), "GHC radix must be at least 2");
        let mut strides = Vec::with_capacity(dims.len());
        let mut dim_offsets = Vec::with_capacity(dims.len());
        let mut acc: u64 = 1;
        let mut chan_acc: u32 = 0;
        for &d in dims {
            strides.push(acc as u32);
            dim_offsets.push(chan_acc);
            acc *= d as u64;
            chan_acc += d as u32 - 1;
            assert!(acc <= u32::MAX as u64, "GHC too large for u32 node ids");
        }
        GeneralizedHypercube {
            dims: dims.to_vec(),
            strides,
            num_nodes: acc as u32,
            dim_offsets,
            chans_per_node: chan_acc,
        }
    }

    /// The binary hypercube Q_n (all radices 2).
    pub fn binary(n: usize) -> Self {
        GeneralizedHypercube::new(&vec![2; n])
    }

    /// Per-dimension radices.
    pub fn dims(&self) -> &[u16] {
        &self.dims
    }

    /// The directed channel from `from` to the node at position `target`
    /// along dimension `dim` (which must differ from `from`'s position).
    pub fn channel_to(&self, from: NodeId, dim: usize, target: u16) -> ChannelId {
        assert!(dim < self.dims.len(), "dim {dim} out of range");
        assert!(target < self.dims[dim], "target position out of range");
        let own = self.coord_of(from).get(dim);
        assert_ne!(own, target, "channel to self requested");
        // Targets are numbered 0..k skipping `own`.
        let slot = if target < own { target } else { target - 1 } as u32;
        ChannelId(from.0 * self.chans_per_node + self.dim_offsets[dim] + slot)
    }

    /// Decompose a channel id into (source node, dimension, target position).
    pub fn channel_parts(&self, ch: ChannelId) -> (NodeId, usize, u16) {
        let node = NodeId(ch.0 / self.chans_per_node);
        let mut slot = ch.0 % self.chans_per_node;
        let mut dim = 0;
        while dim + 1 < self.dims.len() && slot >= self.dims[dim] as u32 - 1 {
            slot -= self.dims[dim] as u32 - 1;
            dim += 1;
        }
        let own = self.coord_of(node).get(dim);
        let target = if (slot as u16) < own {
            slot as u16
        } else {
            slot as u16 + 1
        };
        (node, dim, target)
    }

    /// Iterate over all nodes in linear order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes).map(NodeId)
    }
}

impl Topology for GeneralizedHypercube {
    fn num_nodes(&self) -> usize {
        self.num_nodes as usize
    }

    fn ndims(&self) -> usize {
        self.dims.len()
    }

    fn dim_size(&self, dim: usize) -> u16 {
        self.dims[dim]
    }

    fn coord_of(&self, n: NodeId) -> Coord {
        assert!(n.0 < self.num_nodes, "node {n} out of range");
        let mut axes = [0u16; MAX_DIMS];
        let mut rest = n.0;
        for (d, &size) in self.dims.iter().enumerate() {
            axes[d] = (rest % size as u32) as u16;
            rest /= size as u32;
        }
        Coord::new(&axes[..self.dims.len()])
    }

    fn node_at(&self, c: &Coord) -> NodeId {
        assert_eq!(c.ndims(), self.dims.len(), "coordinate dims mismatch");
        let mut idx: u32 = 0;
        for (d, &size) in self.dims.iter().enumerate() {
            let v = c.get(d);
            assert!(v < size, "coordinate {c} outside GHC {:?}", self.dims);
            idx += v as u32 * self.strides[d];
        }
        NodeId(idx)
    }

    /// Nearest-neighbour step in +/- direction (wrapping); provided for trait
    /// completeness — GHC routing normally jumps straight to the target
    /// position via [`GeneralizedHypercube::channel_to`].
    fn neighbor(&self, n: NodeId, dim: usize, sign: Sign) -> Option<NodeId> {
        assert!(dim < self.dims.len(), "dim {dim} out of range");
        let c = self.coord_of(n);
        let k = self.dims[dim] as i32;
        if k == 1 {
            return None;
        }
        let pos = (c.get(dim) as i32 + sign.delta()).rem_euclid(k);
        Some(self.node_at(&c.with(dim, pos as u16)))
    }

    fn num_channels(&self) -> usize {
        (self.num_nodes * self.chans_per_node) as usize
    }

    fn channel_between(&self, from: NodeId, to: NodeId) -> Option<ChannelId> {
        let cf = self.coord_of(from);
        let ct = self.coord_of(to);
        if cf.hamming(&ct) != 1 {
            return None;
        }
        let dim = (0..self.ndims()).find(|&d| cf.get(d) != ct.get(d)).unwrap();
        Some(self.channel_to(from, dim, ct.get(dim)))
    }

    fn channel_endpoints(&self, ch: ChannelId) -> (NodeId, NodeId) {
        let (node, dim, target) = self.channel_parts(ch);
        let dst = self.node_at(&self.coord_of(node).with(dim, target));
        (node, dst)
    }

    /// GHC distance = Hamming distance over coordinates (one hop per
    /// differing dimension).
    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        self.coord_of(a).hamming(&self.coord_of(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_hypercube_degree() {
        let q4 = GeneralizedHypercube::binary(4);
        assert_eq!(q4.num_nodes(), 16);
        assert_eq!(q4.num_channels(), 16 * 4);
    }

    #[test]
    fn coord_roundtrip() {
        let g = GeneralizedHypercube::new(&[3, 4, 2]);
        for n in g.nodes() {
            assert_eq!(g.node_at(&g.coord_of(n)), n);
        }
    }

    #[test]
    fn channel_roundtrip() {
        let g = GeneralizedHypercube::new(&[4, 3]);
        for n in g.nodes() {
            let c = g.coord_of(n);
            for dim in 0..2 {
                for target in 0..g.dim_size(dim) {
                    if target == c.get(dim) {
                        continue;
                    }
                    let ch = g.channel_to(n, dim, target);
                    assert_eq!(g.channel_parts(ch), (n, dim, target));
                    let (from, to) = g.channel_endpoints(ch);
                    assert_eq!(from, n);
                    assert_eq!(g.coord_of(to), c.with(dim, target));
                }
            }
        }
    }

    #[test]
    fn distance_is_hamming() {
        let g = GeneralizedHypercube::new(&[4, 4, 4]);
        let a = g.node_at(&Coord::xyz(0, 0, 0));
        let b = g.node_at(&Coord::xyz(3, 0, 2));
        assert_eq!(g.distance(a, b), 2, "one hop per differing dim");
    }

    #[test]
    fn channel_between_same_dim_long_jump() {
        let g = GeneralizedHypercube::new(&[5, 5]);
        let a = g.node_at(&Coord::xy(0, 2));
        let b = g.node_at(&Coord::xy(4, 2));
        let ch = g.channel_between(a, b).expect("K5 edge exists");
        assert_eq!(g.channel_endpoints(ch), (a, b));
    }

    #[test]
    fn channel_between_two_dims_is_none() {
        let g = GeneralizedHypercube::new(&[5, 5]);
        let a = g.node_at(&Coord::xy(0, 0));
        let b = g.node_at(&Coord::xy(1, 1));
        assert_eq!(g.channel_between(a, b), None);
    }

    #[test]
    #[should_panic(expected = "channel to self")]
    fn channel_to_self_panics() {
        let g = GeneralizedHypercube::new(&[4, 4]);
        let n = g.node_at(&Coord::xy(2, 0));
        let _ = g.channel_to(n, 0, 2);
    }
}
