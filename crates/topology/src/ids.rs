//! Dense integer identifiers for nodes and directed channels.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node (processor + router) in the network, identified by its linear index
/// in row-major coordinate order. Dense in `0..num_nodes`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The linear index as a usize, for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A **directed** physical channel (link) between two adjacent routers.
///
/// Channel ids are dense in `0..num_channels` for the owning topology, so
/// per-channel simulator state lives in flat arrays. The id scheme is
/// topology-specific; use the topology's methods to resolve endpoints.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChannelId(pub u32);

impl ChannelId {
    /// The dense index as a usize, for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId(17);
        assert_eq!(n.index(), 17);
        assert_eq!(format!("{n}"), "n17");
    }

    #[test]
    fn channel_id_roundtrip() {
        let c = ChannelId(5);
        assert_eq!(c.index(), 5);
        assert_eq!(format!("{c:?}"), "c5");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(NodeId(1) < NodeId(2));
        assert!(ChannelId(0) < ChannelId(9));
    }
}
