//! # wormcast-topology — interconnection-network topologies
//!
//! The node/channel structure under the wormcast simulator:
//!
//! * [`Mesh`] — the k-ary n-dimensional mesh, the network the paper studies;
//! * [`Torus`] — the k-ary n-cube, from the paper's future-directions list;
//! * [`GeneralizedHypercube`] — likewise;
//! * [`partition`] — the plane/line/corner coordinate algebra the broadcast
//!   algorithms are written in.
//!
//! All topologies expose dense [`NodeId`]/[`ChannelId`] index spaces so the
//! simulator keeps per-node and per-channel state in flat arrays.

#![warn(missing_docs)]

pub mod coord;
pub mod ghc;
pub mod ids;
pub mod mesh;
pub mod partition;
pub mod torus;

pub use coord::{Coord, Sign, MAX_DIMS};
pub use ghc::GeneralizedHypercube;
pub use ids::{ChannelId, NodeId};
pub use mesh::Mesh;
pub use partition::{halves, line_nodes, mesh_corners, straight_walk, Plane, ShardMap};
pub use torus::Torus;

/// Common interface over direct interconnection networks.
///
/// A topology defines the node set, the directed channel set, and the
/// adjacency structure. Channel ids are dense in `0..num_channels()` so the
/// simulator can use flat per-channel state arrays (some id slots may be
/// physically absent on a mesh boundary; they are simply never used).
pub trait Topology {
    /// Total number of nodes.
    fn num_nodes(&self) -> usize;

    /// Number of dimensions.
    fn ndims(&self) -> usize;

    /// Extent of dimension `dim`.
    fn dim_size(&self, dim: usize) -> u16;

    /// The coordinate of node `n`.
    fn coord_of(&self, n: NodeId) -> Coord;

    /// The node at coordinate `c`.
    fn node_at(&self, c: &Coord) -> NodeId;

    /// The adjacent node one step from `n` along `dim` in direction `sign`,
    /// or `None` if no such neighbour exists (mesh boundary).
    fn neighbor(&self, n: NodeId, dim: usize, sign: Sign) -> Option<NodeId>;

    /// Size of the dense channel-id space.
    fn num_channels(&self) -> usize;

    /// The directed channel from `from` to `to`, if the two are adjacent.
    fn channel_between(&self, from: NodeId, to: NodeId) -> Option<ChannelId>;

    /// The (source, destination) nodes of a channel.
    fn channel_endpoints(&self, ch: ChannelId) -> (NodeId, NodeId);

    /// Length of a shortest path between two nodes, in hops.
    fn distance(&self, a: NodeId, b: NodeId) -> u32;
}
