//! Batch-means steady-state estimation.
//!
//! The paper (§3.3) collects load-sweep statistics with a batch strategy:
//! "20 batches have been used to collect the statistics reported here
//! (actually 21 batches were used, but the first batch statistics have been
//! ignored because it produces optimistic values due to cold start)". This
//! module reproduces that method: observations stream into fixed-size
//! batches; the first `warmup` batches are discarded; the batch means are
//! treated as (approximately independent) samples and a Student-t confidence
//! interval is computed on their grand mean.

use crate::summary::OnlineStats;
use crate::ttable::t_critical_95;
use serde::{Deserialize, Serialize};

/// Streaming batch-means estimator.
///
/// # Examples
///
/// The paper's configuration — 21 batches with the cold-start batch
/// discarded:
///
/// ```
/// use wormcast_stats::BatchMeans;
///
/// let mut b = BatchMeans::new(100, 1);
/// for i in 0..2_100 {
///     b.push(5.0 + (i % 7) as f64);
/// }
/// let est = b.estimate().unwrap();
/// assert_eq!(est.batches, 20);
/// assert!((est.mean - 8.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchMeans {
    batch_size: u64,
    warmup_batches: usize,
    current: OnlineStats,
    batch_means: Vec<f64>,
    discarded: usize,
}

/// The result of a batch-means estimation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BatchEstimate {
    /// Grand mean of the retained batch means.
    pub mean: f64,
    /// Half-width of the 95% confidence interval around `mean`.
    pub half_width_95: f64,
    /// Number of retained (post-warmup) batches.
    pub batches: usize,
}

impl BatchEstimate {
    /// Relative precision: half-width / mean (∞ when the mean is 0).
    pub fn relative_precision(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width_95 / self.mean.abs()
        }
    }
}

impl BatchMeans {
    /// An estimator that groups observations into batches of `batch_size`
    /// and discards the first `warmup_batches` completed batches.
    ///
    /// The paper's configuration is `warmup_batches = 1` with 21 total
    /// batches (20 retained).
    ///
    /// # Panics
    /// Panics if `batch_size` is zero.
    pub fn new(batch_size: u64, warmup_batches: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            batch_size,
            warmup_batches,
            current: OnlineStats::new(),
            batch_means: Vec::new(),
            discarded: 0,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.current.push(x);
        if self.current.count() == self.batch_size {
            let mean = self.current.mean();
            self.current = OnlineStats::new();
            if self.discarded < self.warmup_batches {
                self.discarded += 1;
            } else {
                self.batch_means.push(mean);
            }
        }
    }

    /// Number of completed, retained batches.
    pub fn completed_batches(&self) -> usize {
        self.batch_means.len()
    }

    /// Total observations consumed (including warmup and the partial batch).
    pub fn observations(&self) -> u64 {
        (self.discarded + self.batch_means.len()) as u64 * self.batch_size + self.current.count()
    }

    /// The retained batch means.
    pub fn means(&self) -> &[f64] {
        &self.batch_means
    }

    /// The grand mean and its 95% CI over retained batches, or `None` with
    /// fewer than two retained batches.
    pub fn estimate(&self) -> Option<BatchEstimate> {
        let k = self.batch_means.len();
        if k < 2 {
            return None;
        }
        let s = crate::summary::summarize(&self.batch_means);
        let t = t_critical_95(k - 1);
        Some(BatchEstimate {
            mean: s.mean(),
            half_width_95: t * s.std_dev() / (k as f64).sqrt(),
            batches: k,
        })
    }

    /// Whether the estimate has reached the requested relative precision at
    /// 95% confidence with at least `min_batches` retained batches — the
    /// "steady state (results do not change with time)" stopping rule.
    pub fn is_precise(&self, rel: f64, min_batches: usize) -> bool {
        match self.estimate() {
            Some(e) => e.batches >= min_batches && e.relative_precision() <= rel,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_fill_and_roll() {
        let mut b = BatchMeans::new(3, 0);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0] {
            b.push(x);
        }
        assert_eq!(b.completed_batches(), 2);
        assert_eq!(b.means(), &[2.0, 5.0]);
        assert_eq!(b.observations(), 7);
    }

    #[test]
    fn warmup_discards_first_batches() {
        let mut b = BatchMeans::new(2, 1);
        for x in [100.0, 100.0, 1.0, 1.0, 2.0, 2.0] {
            b.push(x);
        }
        // First batch (mean 100 — the "cold start") dropped.
        assert_eq!(b.means(), &[1.0, 2.0]);
    }

    #[test]
    fn estimate_needs_two_batches() {
        let mut b = BatchMeans::new(2, 0);
        b.push(1.0);
        b.push(1.0);
        assert!(b.estimate().is_none());
        b.push(2.0);
        b.push(2.0);
        let e = b.estimate().unwrap();
        assert!((e.mean - 1.5).abs() < 1e-12);
        assert_eq!(e.batches, 2);
    }

    #[test]
    fn ci_covers_true_mean_for_constant_data() {
        let mut b = BatchMeans::new(5, 1);
        for _ in 0..100 {
            b.push(7.0);
        }
        let e = b.estimate().unwrap();
        assert_eq!(e.mean, 7.0);
        assert_eq!(e.half_width_95, 0.0);
        assert!(b.is_precise(0.01, 10));
    }

    #[test]
    fn paper_configuration_21_batches_drop_1() {
        let mut b = BatchMeans::new(10, 1);
        for i in 0..210 {
            b.push(i as f64);
        }
        assert_eq!(b.completed_batches(), 20);
    }

    #[test]
    fn relative_precision_of_zero_mean() {
        let e = BatchEstimate {
            mean: 0.0,
            half_width_95: 1.0,
            batches: 5,
        };
        assert!(e.relative_precision().is_infinite());
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_rejected() {
        let _ = BatchMeans::new(0, 0);
    }

    #[test]
    fn is_precise_respects_min_batches() {
        let mut b = BatchMeans::new(1, 0);
        b.push(5.0);
        b.push(5.0);
        b.push(5.0);
        assert!(b.is_precise(0.05, 3));
        assert!(!b.is_precise(0.05, 4));
    }
}
