//! Quantiles and tail statistics.
//!
//! The paper reports means and CVs; tail behaviour (p95/p99 arrival times)
//! is where broadcast stragglers live, so the workload drivers expose it
//! through this module.

use serde::{Deserialize, Serialize};

/// A sorted sample supporting exact quantile queries.
///
/// # Examples
///
/// ```
/// use wormcast_stats::Quantiles;
///
/// let q = Quantiles::new((1..=100).map(f64::from).collect());
/// assert_eq!(q.median(), 50.5);
/// assert_eq!(q.p95(), 95.05);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Quantiles {
    sorted: Vec<f64>,
}

impl Quantiles {
    /// Build from an arbitrary sample (NaNs are rejected).
    ///
    /// # Panics
    /// Panics if the sample is empty or contains NaN.
    pub fn new(mut xs: Vec<f64>) -> Self {
        assert!(!xs.is_empty(), "quantiles need at least one observation");
        assert!(xs.iter().all(|x| !x.is_nan()), "NaN in sample");
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Quantiles { sorted: xs }
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// The q-quantile (0 ≤ q ≤ 1) with linear interpolation between order
    /// statistics (type-7, the common default).
    ///
    /// # Panics
    /// Panics if `q` is outside [0, 1].
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let h = q * (n - 1) as f64;
        let lo = h.floor() as usize;
        let hi = h.ceil() as usize;
        let frac = h - lo as f64;
        self.sorted[lo] + (self.sorted[hi] - self.sorted[lo]) * frac
    }

    /// Median (p50).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        *self.sorted.last().unwrap()
    }

    /// Interquartile range, a robust spread measure.
    pub fn iqr(&self) -> f64 {
        self.quantile(0.75) - self.quantile(0.25)
    }
}

/// A fixed-width histogram over `[lo, hi)` with an overflow bucket — the
/// shape view behind the arrival-time distributions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    width: f64,
    counts: Vec<u64>,
    overflow: u64,
    underflow: u64,
    total: u64,
}

impl Histogram {
    /// A histogram of `bins` equal-width buckets spanning `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            width: (hi - lo) / bins as f64,
            counts: vec![0; bins],
            overflow: 0,
            underflow: 0,
            total: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.lo) / self.width) as usize;
        if idx >= self.counts.len() {
            self.overflow += 1;
        } else {
            self.counts[idx] += 1;
        }
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bucket counts (excluding under/overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Render a compact ASCII sparkline of the bucket mass.
    pub fn sparkline(&self) -> String {
        const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        self.counts
            .iter()
            .map(|&c| GLYPHS[(c * 7 / max) as usize])
            .collect()
    }
}

/// Lag-1 autocorrelation of a series — the standard check that batch means
/// are large enough to be treated as independent (|ρ₁| of the batch means
/// should be small).
///
/// Returns 0 for series shorter than 2 or with zero variance.
pub fn lag1_autocorrelation(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum();
    if var == 0.0 {
        return 0.0;
    }
    let cov: f64 = xs.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum();
    cov / var
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_sample() {
        let q = Quantiles::new(vec![3.0, 1.0, 2.0, 4.0, 5.0]);
        assert_eq!(q.median(), 3.0);
        assert_eq!(q.min(), 1.0);
        assert_eq!(q.max(), 5.0);
        assert_eq!(q.quantile(0.25), 2.0);
        assert_eq!(q.iqr(), 2.0);
        assert_eq!(q.count(), 5);
    }

    #[test]
    fn quantile_interpolates() {
        let q = Quantiles::new(vec![0.0, 10.0]);
        assert_eq!(q.quantile(0.5), 5.0);
        assert_eq!(q.quantile(0.1), 1.0);
    }

    #[test]
    fn singleton_sample() {
        let q = Quantiles::new(vec![7.0]);
        assert_eq!(q.median(), 7.0);
        assert_eq!(q.p99(), 7.0);
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn empty_rejected() {
        let _ = Quantiles::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Quantiles::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn percentiles_of_uniform_grid() {
        let q = Quantiles::new((0..=100).map(|i| i as f64).collect());
        assert_eq!(q.p95(), 95.0);
        assert_eq!(q.p99(), 99.0);
    }

    #[test]
    fn histogram_buckets_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.0, 3.0, 9.9, 10.0, -1.0, 100.0] {
            h.record(x);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.sparkline().chars().count(), 5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn bad_histogram_range() {
        let _ = Histogram::new(5.0, 5.0, 3);
    }

    #[test]
    fn autocorrelation_of_alternating_series_is_negative() {
        let xs: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(lag1_autocorrelation(&xs) < -0.9);
    }

    #[test]
    fn autocorrelation_of_trend_is_positive() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(lag1_autocorrelation(&xs) > 0.9);
    }

    #[test]
    fn autocorrelation_degenerate_cases() {
        assert_eq!(lag1_autocorrelation(&[]), 0.0);
        assert_eq!(lag1_autocorrelation(&[1.0]), 0.0);
        assert_eq!(lag1_autocorrelation(&[2.0, 2.0, 2.0]), 0.0);
    }
}
