//! # wormcast-stats — simulation output analysis
//!
//! The estimators behind every number the experiments report:
//!
//! * [`OnlineStats`] — streaming mean / SD / CV (the paper's coefficient of
//!   variation of per-destination arrival times, §3.2);
//! * [`BatchMeans`] — the paper's batch-means methodology for the load sweeps
//!   (§3.3: 21 batches, first discarded, 95% confidence);
//! * [`t_critical_95`] — Student-t critical values for the intervals;
//! * [`Quantiles`] / [`Histogram`] / [`lag1_autocorrelation`] — tail
//!   statistics and the batch-independence diagnostic.

#![warn(missing_docs)]

pub mod batch;
pub mod quantile;
pub mod summary;
pub mod ttable;

pub use batch::{BatchEstimate, BatchMeans};
pub use quantile::{lag1_autocorrelation, Histogram, Quantiles};
pub use summary::{summarize, OnlineStats};
pub use ttable::t_critical_95;
