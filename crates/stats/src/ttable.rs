//! Two-sided Student-t critical values at 95% confidence.

/// The 97.5th percentile of the Student-t distribution with `df` degrees of
/// freedom (so that ±t covers 95% two-sided). Exact table for df ≤ 30, then
/// selected larger values, then the normal limit 1.96.
///
/// # Panics
/// Panics if `df == 0` — a CI over a single sample is undefined.
pub fn t_critical_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => panic!("t critical value undefined for 0 degrees of freedom"),
        1..=30 => TABLE[df - 1],
        31..=40 => 2.021,
        41..=60 => 2.000,
        61..=120 => 1.980,
        _ => 1.960,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spot_values() {
        assert_eq!(t_critical_95(1), 12.706);
        assert_eq!(t_critical_95(10), 2.228);
        assert_eq!(t_critical_95(19), 2.093); // the paper's 20 batches
        assert_eq!(t_critical_95(30), 2.042);
        assert_eq!(t_critical_95(1000), 1.960);
    }

    #[test]
    fn monotone_decreasing() {
        let mut prev = f64::INFINITY;
        for df in 1..200 {
            let t = t_critical_95(df);
            assert!(t <= prev, "t table not monotone at df={df}");
            prev = t;
        }
    }

    #[test]
    #[should_panic(expected = "0 degrees of freedom")]
    fn zero_df_panics() {
        let _ = t_critical_95(0);
    }
}
