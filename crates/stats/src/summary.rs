//! Single-pass summary statistics (Welford's algorithm).

use serde::{Deserialize, Serialize};

/// Online mean/variance accumulator, numerically stable for long runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

/// Deriving `Default` would zero the min/max sentinels (`min = max = 0.0`),
/// so a defaulted accumulator would report a false minimum of 0 after
/// pushes of positive values; delegate to [`OnlineStats::new`] instead.
impl Default for OnlineStats {
    fn default() -> Self {
        OnlineStats::new()
    }
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; 0 for an empty accumulator.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (n−1 denominator); 0 with fewer than two
    /// observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation: SD / mean — the paper's node-level
    /// parallelism metric (§3.2). Returns 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Smallest observation (∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let d = other.mean - self.mean;
        self.m2 += other.m2 + d * d * (self.n as f64 * other.n as f64) / n;
        self.mean += d * other.n as f64 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Compute summary statistics of a slice in one call.
pub fn summarize(xs: &[f64]) -> OnlineStats {
    let mut s = OnlineStats::new();
    for &x in xs {
        s.push(x);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population SD is 2; sample variance = 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn cv_definition() {
        let s = summarize(&[1.0, 3.0]);
        // mean 2, sd sqrt(2)
        assert!((s.cv() - (2.0f64).sqrt() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single() {
        let e = OnlineStats::new();
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.variance(), 0.0);
        assert_eq!(e.cv(), 0.0);
        let s = summarize(&[5.0]);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let full = summarize(&xs);
        let mut a = summarize(&xs[..37]);
        let b = summarize(&xs[37..]);
        a.merge(&b);
        assert_eq!(a.count(), full.count());
        assert!((a.mean() - full.mean()).abs() < 1e-9);
        assert!((a.variance() - full.variance()).abs() < 1e-9);
        assert_eq!(a.min(), full.min());
        assert_eq!(a.max(), full.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = summarize(&[1.0, 2.0, 3.0]);
        let before = s.mean();
        s.merge(&OnlineStats::new());
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), before);
    }

    #[test]
    fn zero_mean_cv_is_zero() {
        let s = summarize(&[-1.0, 1.0]);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn default_matches_new() {
        let mut d = OnlineStats::default();
        let n = OnlineStats::new();
        assert_eq!(d.count(), n.count());
        assert_eq!(d.min(), f64::INFINITY);
        assert_eq!(d.max(), f64::NEG_INFINITY);
        // The sentinel bug: a defaulted accumulator must track the true
        // minimum of positive observations, not a phantom 0.
        d.push(3.0);
        d.push(7.0);
        assert_eq!(d.min(), 3.0);
        assert_eq!(d.max(), 7.0);
    }

    #[test]
    fn empty_accumulator_serde_round_trip() {
        // The vendored serde facade has no deserializer, so the round-trip
        // is checked at the serialized representation: `default()` and
        // `new()` must agree byte-for-byte (same sentinels), which is what
        // guarantees a re-hydrated accumulator behaves like a fresh one.
        let d = serde_json::to_string(&OnlineStats::default()).unwrap();
        let n = serde_json::to_string(&OnlineStats::new()).unwrap();
        assert_eq!(d, n);
        assert!(!d.contains("\"min\":0"), "default must not zero min: {d}");
    }
}
