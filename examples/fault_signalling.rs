//! Fault signalling — the paper's remaining motivating use: broadcast "to
//! signal changes in network conditions, e.g., faults".
//!
//! This example injects a link fault and shows (a) which broadcast branches
//! survive it under each algorithm's routing substrate, using the engine's
//! fault-injection and tracing hooks, and (b) why adaptive routing (AB's
//! substrate) keeps point-to-point traffic flowing around the fault while
//! dimension-ordered traffic stalls.
//!
//! ```sh
//! cargo run --release --example fault_signalling
//! ```

use wormcast::prelude::*;

fn main() {
    let mesh = Mesh::square(8);
    let cfg = NetworkConfig::paper_default();
    // The failed link: (3,4) -> (4,4), an eastward channel mid-mesh.
    let from = mesh.node_at(&Coord::xy(3, 4));
    let to = mesh.node_at(&Coord::xy(4, 4));
    let dead = mesh.channel_between(from, to).expect("adjacent");

    println!("link fault injected on (3,4) -> (4,4) of an 8x8 mesh\n");

    // A dimension-ordered unicast that must cross the dead link stalls…
    let mut net = Network::new(mesh.clone(), cfg, Box::new(DimensionOrdered));
    net.fail_channel(dead);
    let src = mesh.node_at(&Coord::xy(0, 4));
    // Same-row destination for the deterministic case (must cross the dead
    // link) …
    let dst = mesh.node_at(&Coord::xy(7, 4));
    net.inject_at(
        SimTime::ZERO,
        MessageSpec {
            src,
            route: Route::Fixed(CodedPath::unicast(&mesh, dor_path(&mesh, src, dst))),
            length: 32,
            op: OpId(0),
            tag: 0,
            charge_startup: true,
        },
    );
    net.run_until_idle();
    println!(
        "dimension-ordered unicast (0,4) -> (7,4): {}",
        if net.in_flight() > 0 {
            "STALLED on the dead link (deterministic routing has no detour)"
        } else {
            "delivered"
        }
    );

    // …while a west-first adaptive message with a north-east destination
    // detours around it. (Minimal west-first offers no alternative for a
    // same-row destination — adaptivity only chooses among productive
    // channels — so the detour needs a second productive dimension.)
    let dst = mesh.node_at(&Coord::xy(7, 5));
    let mut net = Network::new(mesh.clone(), cfg, Box::new(WestFirst));
    net.fail_channel(dead);
    net.enable_trace(4096);
    let id = net.inject_at(
        SimTime::ZERO,
        MessageSpec {
            src,
            route: Route::Adaptive { dst },
            length: 32,
            op: OpId(0),
            tag: 0,
            charge_startup: true,
        },
    );
    net.run_until_idle();
    let deliveries = net.drain_deliveries();
    let hops = net
        .trace()
        .of_message(id)
        .iter()
        .filter(|r| matches!(r.kind, TraceKind::HeaderArrive))
        .count();
    println!(
        "west-first adaptive unicast  (0,4) -> (7,5): {} in {hops} hops{}",
        if deliveries.len() == 1 {
            "delivered"
        } else {
            "lost"
        },
        if deliveries.len() == 1 {
            format!(" ({:.2} us)", deliveries[0].latency().as_us())
        } else {
            String::new()
        },
    );

    println!(
        "\nThis is the operational story behind fault-signalling broadcasts:\n\
         when a link dies, the news must reach every router so traffic can be\n\
         rerouted or quiesced — and the broadcast algorithm carrying that news\n\
         had better not depend on the link that just died. AB's adaptive\n\
         substrate gives its point-to-point legs exactly that freedom."
    );
}
