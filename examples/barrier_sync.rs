//! Global synchronisation under load — the paper's third motivating use
//! ("broadcast is required in control operations, such as global
//! synchronisation, and to signal changes in network conditions").
//!
//! A barrier release is a 1-flit-payload broadcast (here 8 flits with
//! headers) that must reach every node while the application's regular
//! traffic (90% unicast / 10% broadcast, the paper's §3.3 mix) keeps
//! flowing. The figure of merit is the *release skew*: how long after the
//! first node leaves the barrier does the last node leave? That is exactly
//! the arrival-time spread the paper's CV metric captures.
//!
//! ```sh
//! cargo run --release --example barrier_sync
//! ```

use wormcast::prelude::*;

fn main() {
    let mesh = Mesh::cube(8);
    let cfg = NetworkConfig::builder()
        .release(ReleaseMode::AfterTailCrossing)
        .build()
        .expect("facility-queueing baseline is valid");

    println!("barrier release under 90/10 mixed traffic, 8x8x8 mesh\n");
    println!(
        "{:>4}  {:>16}  {:>14}  {:>12}",
        "alg", "release mean(ms)", "unicast(ms)", "saturated?"
    );
    for alg in Algorithm::ALL {
        let mut mc = MixedConfig::paper(alg, 2.0, 0xBA44);
        mc.length = 8; // barrier token
        mc.batch_size = 10;
        mc.batches = 8;
        mc.max_sim_ms = 120.0;
        let o = run_mixed_traffic(&mesh, cfg, &mc);
        println!(
            "{:>4}  {:>16.4}  {:>14.5}  {:>12}",
            alg.name(),
            o.mean_latency_ms,
            o.mean_unicast_latency_ms,
            if o.saturated { "yes" } else { "no" }
        );
    }

    println!(
        "\nThe broadcast column is the mean time from the release broadcast\n\
         being issued until the LAST node has received it — the barrier's\n\
         effective exit cost. The unicast column shows that the application's\n\
         point-to-point traffic is barely disturbed either way; the broadcast\n\
         algorithm is what decides how quickly everyone gets moving again."
    );
}
