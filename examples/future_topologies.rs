//! The paper's future directions (§4), implemented: coded-path broadcast on
//! the k-ary n-cube (torus) and the generalized hypercube.
//!
//! Wraparound turns a whole dimension into ONE coded path, so an
//! n-dimensional torus broadcasts in n message-passing steps — one fewer
//! than DB needs on the equivalent mesh — and the generalized hypercube's
//! complete-graph dimensions do the same with single-hop fans.
//!
//! ```sh
//! cargo run --release --example future_topologies
//! ```

use wormcast::prelude::*;

fn main() {
    let cfg = NetworkConfig::paper_default();
    let ts = cfg.startup;
    let hop = cfg.hop_time();
    let beta = cfg.flit_time;
    const L: u64 = 100;

    println!("broadcast on the paper's future-direction topologies, L = {L} flits\n");

    // Mesh baseline: DB on 8x8x8 (simulated).
    let mesh = Mesh::cube(8);
    let db = run_single_broadcast(&mesh, cfg, Algorithm::Db, NodeId(91), L);
    println!(
        "{:<26} {:>6} steps  {:>9.2} us  (simulated)",
        "8x8x8 mesh, DB",
        Algorithm::Db.theoretical_steps(&mesh),
        db.network_latency_us
    );

    // Torus: one ring path per dimension per holder — run through the real
    // engine (facility release mode; ring paths need dateline VCs under
    // blocking-in-place, see DESIGN.md).
    let torus = Torus::kary_ncube(8, 3);
    let tsched = torus_ring_broadcast(&torus, NodeId(91));
    tsched.validate(&torus).expect("torus schedule covers all");
    let tcfg = NetworkConfig::builder()
        .release(ReleaseMode::AfterTailCrossing)
        .ports(6)
        .build()
        .expect("facility-queueing baseline is valid");
    let tsim = run_torus_broadcast(&torus, tcfg, NodeId(91), L);
    println!(
        "{:<26} {:>6} steps  {:>9.2} us  (simulated; analytic {:.2})",
        "8-ary 3-cube, ring CPR",
        tsched.steps(),
        tsim.network_latency_us,
        tsim.analytic_latency_us
    );

    // Generalized hypercube with mixed radices, 512 nodes.
    let ghc = GeneralizedHypercube::new(&[8, 8, 8]);
    let gsched = ghc_broadcast(&ghc, NodeId(91));
    gsched.validate(&ghc).expect("GHC schedule covers all");
    println!(
        "{:<26} {:>6} steps  {:>9.2} us  (analytic zero-load)",
        "GHC(8,8,8), fan CPR",
        gsched.steps(),
        gsched.analytic_latency(ts, hop, beta, L).as_us()
    );

    // Binary hypercube for comparison: the classic log2(N)-step tree
    // (coordinates support up to 6 dimensions; Q6 has 64 nodes).
    let q6 = GeneralizedHypercube::binary(6);
    let qsched = ghc_broadcast(&q6, NodeId(33));
    qsched.validate(&q6).expect("Q6 schedule covers all");
    println!(
        "{:<26} {:>6} steps  {:>9.2} us  (analytic zero-load)",
        "binary 6-cube, tree",
        qsched.steps(),
        qsched.analytic_latency(ts, hop, beta, L).as_us()
    );

    println!(
        "\nWraparound rings and complete-graph dimensions both collapse a whole\n\
         dimension into one message-passing step; the torus needs an extra\n\
         virtual channel to keep ring paths deadlock-free on real hardware\n\
         (the classic dateline argument), which is why the mesh algorithms\n\
         of the paper stop at corner-anchored open paths."
    );
}
