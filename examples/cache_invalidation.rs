//! Distributed-shared-memory cache invalidation — the paper's motivating
//! workload ("broadcast communication is often used to support shared data
//! invalidation and updating procedures required for cache coherence
//! protocols").
//!
//! Directory-less coherence broadcasts a short invalidation message to every
//! node whenever a widely shared line is written. Invalidations are small
//! (here 8 flits) and frequent, and what matters is not only how fast the
//! *last* sharer is invalidated (network latency) but how *uneven* the
//! invalidation wave is (the CV of arrival times): a straggling sharer can
//! return stale data for the whole window.
//!
//! ```sh
//! cargo run --release --example cache_invalidation
//! ```

use wormcast::prelude::*;

fn main() {
    let mesh = Mesh::cube(8);
    let cfg = NetworkConfig::paper_default();
    const INVALIDATION_FLITS: u64 = 8;
    // Writes to shared lines arrive continuously; model a steady 0.5
    // invalidation broadcasts per node per ms so operations overlap.
    const WRITE_RATE: f64 = 0.5;
    const WRITES: usize = 50;

    println!("DSM invalidation storm on an 8x8x8 mesh");
    println!(
        "invalidation payload: {INVALIDATION_FLITS} flits, {WRITES} overlapping writes, \
         {WRITE_RATE} writes/node/ms\n"
    );
    println!(
        "{:>4}  {:>14}  {:>16}  {:>10}",
        "alg", "mean stale(us)", "worst sharer(us)", "wave CV"
    );

    for alg in Algorithm::ALL {
        let o = run_contended_broadcasts(
            &mesh,
            cfg,
            alg,
            INVALIDATION_FLITS,
            WRITES,
            WRITE_RATE,
            0xCAFE,
        );
        println!(
            "{:>4}  {:>14.2}  {:>16.2}  {:>10.4}",
            o.algorithm, o.mean_latency_us, o.network_latency_us, o.cv
        );
    }

    println!(
        "\nA low CV means the invalidation wave sweeps all sharers nearly\n\
         simultaneously — the coded-path broadcasts deliver whole rows per\n\
         step, while the unicast-tree algorithms spread arrivals across\n\
         log-many steps and leave late sharers holding stale lines longer."
    );
}
