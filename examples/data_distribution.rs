//! Scientific data distribution — the paper's other motivating workload
//! ("broadcast is often required in scientific computations to distribute
//! large data arrays over system nodes").
//!
//! An iterative solver broadcasts a large coefficient block (2048 flits, the
//! top of the paper's message-length range) at the start of every iteration
//! while neighbour exchanges (unicast background traffic) are still in
//! flight. This example sweeps the message length from 32 to 2048 flits and
//! shows where start-up latency stops dominating and bandwidth takes over —
//! the trade-off that decides which broadcast algorithm wins for a given
//! array size.
//!
//! ```sh
//! cargo run --release --example data_distribution
//! ```

use wormcast::prelude::*;

fn main() {
    let mesh = Mesh::cube(8);
    let cfg = NetworkConfig::paper_default();
    let source = mesh.node_at(&Coord::xyz(0, 0, 0));

    println!("coefficient-block distribution on an 8x8x8 mesh (zero load)\n");
    println!(
        "{:>6}  {:>10}  {:>10}  {:>10}  {:>10}",
        "flits", "RD(us)", "EDN(us)", "DB(us)", "AB(us)"
    );
    // The paper's message-length range, 32..2048 flits (doubling).
    let mut len = 32u64;
    while len <= 2048 {
        let lat = |alg: Algorithm| -> f64 {
            run_single_broadcast(&mesh, cfg, alg, source, len).network_latency_us
        };
        println!(
            "{:>6}  {:>10.2}  {:>10.2}  {:>10.2}  {:>10.2}",
            len,
            lat(Algorithm::Rd),
            lat(Algorithm::Edn),
            lat(Algorithm::Db),
            lat(Algorithm::Ab)
        );
        len *= 2;
    }

    println!(
        "\nShort blocks are start-up bound: every extra message-passing step\n\
         costs a full Ts, so AB (3 steps) and DB (4) dominate RD (9).\n\
         Long blocks are bandwidth-bound: each relay step must re-stream the\n\
         whole block, so the step count keeps its leverage — at 2048 flits\n\
         one step costs Ts + L*beta = 1.5 + 6.1 us."
    );

    // For the largest block, show how the advantage translates to the
    // iteration rate of the solver.
    let len = 2048;
    let db = run_single_broadcast(&mesh, cfg, Algorithm::Db, source, len);
    let rd = run_single_broadcast(&mesh, cfg, Algorithm::Rd, source, len);
    let per_iter_saving_us = rd.network_latency_us - db.network_latency_us;
    println!(
        "\nAt {len} flits, switching RD -> DB saves {per_iter_saving_us:.1} us per\n\
         iteration; over a 10^6-iteration run that is {:.1} s of wall-clock.",
        per_iter_saving_us * 1e6 / 1e6
    );
}
