//! Quickstart: broadcast one message on a wormhole mesh and look at what
//! happened, at both the network level and the node level.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wormcast::prelude::*;

fn main() {
    // The paper's mid-size network: an 8x8x8 mesh (512 nodes), wormhole
    // switched, with Cray T3D-era timing (Ts = 1.5us, beta = 0.003us).
    let mesh = Mesh::cube(8);
    let cfg = NetworkConfig::paper_default();

    println!("network: 8x8x8 mesh, {} nodes", mesh.num_nodes());
    println!(
        "timing : Ts = {} (start-up), beta = {} (per flit)\n",
        cfg.startup, cfg.flit_time
    );

    // Broadcast 100 flits from a node in the interior, once per algorithm.
    let source = mesh.node_at(&Coord::xyz(3, 4, 5));
    println!(
        "{:>4}  {:>6}  {:>12}  {:>12}  {:>8}",
        "alg", "steps", "latency(us)", "mean-node(us)", "CV"
    );
    for alg in Algorithm::ALL {
        let steps = alg.theoretical_steps(&mesh);
        let o = run_single_broadcast(&mesh, cfg, alg, source, 100);
        println!(
            "{:>4}  {:>6}  {:>12.2}  {:>12.2}  {:>8.4}",
            alg.name(),
            steps,
            o.network_latency_us,
            o.mean_latency_us,
            o.cv
        );
    }

    println!(
        "\nThe proposed coded-path algorithms (DB, AB) finish in a constant\n\
         number of message-passing steps, so their latency barely depends on\n\
         the network size; Recursive Doubling pays one start-up per log2(N)\n\
         steps and the Extended Dominating Node scheme one per k+m+4 levels."
    );
}
