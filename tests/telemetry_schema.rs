//! Schema validation for the telemetry NDJSON event stream.
//!
//! Contract (documented in DESIGN.md §4.3): every line is a flat JSON
//! object with keys in fixed order `t_ps, ev, rep, msg, node, ch, q,
//! flits`; `t_ps` (integer picoseconds), `ev` (event-name string) and `rep`
//! (integer replication stamp) are always present; timestamps are
//! non-decreasing per `(rep, msg)` pair. [`validate_ndjson`] checks all of
//! it, and `ci.sh` runs this suite against a stream freshly produced by the
//! release `fig1` binary (path handed over via `WORMCAST_EVENTS_FILE`).

use wormcast::experiments::fig1;
use wormcast::experiments::telemetry::events_ndjson;
use wormcast::prelude::*;
use wormcast::telemetry::events::{parse_line, validate_ndjson, Scalar};

fn small_fig1_events() -> String {
    let params = fig1::Fig1Params {
        sides: vec![4],
        length: 32,
        startup_us: 1.5,
        runs: 3,
        seed: 11,
    };
    let spec = TelemetrySpec::full();
    let (_, frames) = params.run((&Runner::sequential(), &spec)).into_parts();
    let (ndjson, dropped) = events_ndjson(&frames);
    assert_eq!(dropped, 0, "small run must fit the default budget");
    ndjson
}

#[test]
fn generated_stream_validates() {
    let ndjson = small_fig1_events();
    let stats = validate_ndjson(&ndjson).expect("stream validates");
    assert!(stats.lines > 0, "stream is non-empty");
    assert!(stats.messages > 0, "stream tracks messages");
}

#[test]
fn every_line_is_flat_json_with_required_keys() {
    let ndjson = small_fig1_events();
    for line in ndjson.lines() {
        let fields = parse_line(line).expect("line parses");
        assert_eq!(fields[0].0, "t_ps", "t_ps leads every line");
        assert_eq!(fields[1].0, "ev");
        assert_eq!(fields[2].0, "rep");
        assert!(matches!(fields[0].1, Scalar::U64(_)));
        assert!(matches!(fields[1].1, Scalar::Str(_)));
        assert!(matches!(fields[2].1, Scalar::U64(_)));
    }
}

#[test]
fn lifecycle_events_all_appear() {
    let ndjson = small_fig1_events();
    for ev in [
        "inject",
        "port_grant",
        "startup_done",
        "header",
        "channel_grant",
        "channel_release",
        "deliver",
        "complete",
    ] {
        assert!(
            ndjson.contains(&format!("\"ev\":\"{ev}\"")),
            "missing lifecycle event {ev}"
        );
    }
}

#[test]
fn validator_rejects_malformed_streams() {
    assert!(validate_ndjson("not json\n").is_err());
    assert!(
        validate_ndjson("{\"ev\":\"inject\",\"rep\":0}\n").is_err(),
        "missing t_ps must be rejected"
    );
    let backwards = "{\"t_ps\":10,\"ev\":\"inject\",\"rep\":0,\"msg\":1}\n\
                     {\"t_ps\":5,\"ev\":\"deliver\",\"rep\":0,\"msg\":1}\n";
    assert!(
        validate_ndjson(backwards).is_err(),
        "non-monotone t_ps per (rep, msg) must be rejected"
    );
}

/// ci.sh runs the release `fig1` binary with `--events`, then re-runs this
/// test with `WORMCAST_EVENTS_FILE` pointing at the produced stream — the
/// end-to-end check that the shipped binaries emit schema-valid NDJSON.
#[test]
fn external_events_file_validates_when_provided() {
    let Ok(path) = std::env::var("WORMCAST_EVENTS_FILE") else {
        return;
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read WORMCAST_EVENTS_FILE={path}: {e}"));
    let stats =
        validate_ndjson(&text).unwrap_or_else(|e| panic!("{path} failed schema validation: {e}"));
    assert!(stats.lines > 0, "{path} is empty");
    println!(
        "validated {}: {} lines, {} messages",
        path, stats.lines, stats.messages
    );
}
