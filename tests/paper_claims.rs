//! End-to-end integration tests asserting the paper's headline results on
//! reduced (CI-sized) versions of the real experiments. The full-size runs
//! live in the experiment binaries and benches; these tests keep the claims
//! from regressing.

use wormcast::experiments::{fig1, fig2, fig34, steps};
use wormcast::prelude::*;

#[test]
fn section2_step_count_identities() {
    // RD = log2 N, EDN = k+m+4, DB = 4, AB = 3 — constructed schedules match
    // the closed forms on every evaluation size of the paper.
    for row in steps::run(&steps::default_shapes()) {
        for (name, constructed, analytical) in &row.counts {
            assert_eq!(
                constructed, analytical,
                "{name} on {:?}: {constructed} vs formula {analytical}",
                row.shape
            );
        }
    }
}

#[test]
fn fig1_scalability_claims_hold_at_reduced_scale() {
    let params = fig1::Fig1Params {
        sides: vec![4, 8, 10],
        length: 100,
        startup_us: 1.5,
        runs: 6,
        seed: 77,
    };
    let cells = params.run(&Runner::default()).cells;
    let bad = fig1::check_claims(&cells);
    assert!(bad.is_empty(), "Fig. 1 claims violated: {bad:?}");
}

#[test]
fn fig1_low_startup_variant_preserves_ordering() {
    // §3.1 also simulates Ts = 0.15us; the ordering DB/AB < EDN < RD must
    // survive, with smaller absolute gaps.
    let lat = |ts: f64, alg: Algorithm| -> f64 {
        let params = fig1::Fig1Params {
            sides: vec![8],
            length: 100,
            startup_us: ts,
            runs: 4,
            seed: 3,
        };
        let cells = params.run(&Runner::default()).cells;
        cells
            .iter()
            .find(|c| c.algorithm == alg.name())
            .unwrap()
            .latency_us
    };
    for ts in [1.5, 0.15] {
        let (rd, edn, db, ab) = (
            lat(ts, Algorithm::Rd),
            lat(ts, Algorithm::Edn),
            lat(ts, Algorithm::Db),
            lat(ts, Algorithm::Ab),
        );
        assert!(
            db < edn && db < rd,
            "Ts={ts}: DB {db} vs EDN {edn}, RD {rd}"
        );
        assert!(ab < edn && ab < rd, "Ts={ts}: AB {ab}");
    }
    // The RD-vs-DB gap shrinks with the cheaper start-up.
    let gap_hi = lat(1.5, Algorithm::Rd) - lat(1.5, Algorithm::Db);
    let gap_lo = lat(0.15, Algorithm::Rd) - lat(0.15, Algorithm::Db);
    assert!(
        gap_lo < gap_hi,
        "start-up gap should shrink: {gap_lo} vs {gap_hi}"
    );
}

#[test]
fn fig2_cv_orderings_hold_at_reduced_scale() {
    // The 64-node mesh is dominated by step-structure noise at this reduced
    // run count (see EXPERIMENTS.md); 256 and 512 nodes carry the claims.
    let params = fig2::Fig2Params {
        shapes: vec![[4, 4, 16], [8, 8, 8]],
        length: 100,
        startup_us: 1.5,
        runs: 25,
        broadcast_rate_per_node_per_ms: 0.7,
        seed: 5,
    };
    let cells = params.run(&Runner::default()).cells;
    let bad = fig2::check_claims(&cells);
    assert!(bad.is_empty(), "Fig. 2 claims violated: {bad:?}");
}

#[test]
fn fig3_load_sweep_claims_hold_at_reduced_scale() {
    let params = fig34::LoadSweepParams {
        shape: [8, 8, 8],
        loads: vec![0.5, 2.0, 5.0],
        length: 32,
        startup_us: 1.5,
        batch_size: 10,
        batches: 6,
        max_sim_ms: 120.0,
        release: ReleaseMode::AfterTailCrossing,
        seed: 5,
    };
    let cells = params.run(&Runner::default()).cells;
    let bad = fig34::check_claims(&cells, &params);
    assert!(bad.is_empty(), "Fig. 3 claims violated: {bad:?}");
}

#[test]
fn deterministic_experiments_are_reproducible() {
    let p = fig1::Fig1Params {
        sides: vec![4],
        length: 64,
        startup_us: 1.5,
        runs: 3,
        seed: 123,
    };
    let a = p.run(&Runner::new(1)).cells;
    let b = p.run(&Runner::new(3)).cells;
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.latency_us, y.latency_us);
        assert_eq!(x.algorithm, y.algorithm);
    }
}

#[test]
fn broadcast_latency_decomposes_into_steps() {
    // At zero load the network latency of each algorithm is bounded below by
    // steps·Ts and above by steps·(Ts + worst-path + body) — the paper's
    // start-up-dominated accounting.
    let mesh = Mesh::cube(4);
    let cfg = NetworkConfig::paper_default();
    let ts = cfg.startup.as_us();
    for alg in Algorithm::ALL {
        let steps = alg.theoretical_steps(&mesh) as f64;
        let o = run_single_broadcast(&mesh, cfg, alg, NodeId(21), 100);
        let per_step_max = ts + 24.0 * cfg.hop_time().as_us() + cfg.body_time(100).as_us();
        assert!(
            o.network_latency_us >= steps * ts,
            "{alg}: {} < {steps} * Ts",
            o.network_latency_us
        );
        assert!(
            o.network_latency_us <= steps * per_step_max + 1.0,
            "{alg}: {} too large",
            o.network_latency_us
        );
    }
}

#[test]
fn proposed_algorithms_send_fewer_longer_messages() {
    // The mechanism behind the paper's results: DB/AB trade many unicasts
    // for a few multidestination paths.
    let mesh = Mesh::cube(8);
    let rd = Algorithm::Rd.schedule(&mesh, NodeId(0));
    let edn = Algorithm::Edn.schedule(&mesh, NodeId(0));
    let db = Algorithm::Db.schedule(&mesh, NodeId(0));
    let ab = Algorithm::Ab.schedule(&mesh, NodeId(0));
    assert_eq!(rd.num_messages(), 511);
    assert_eq!(edn.num_messages(), 511);
    assert!(db.num_messages() < 250, "DB: {}", db.num_messages());
    assert!(ab.num_messages() < 100, "AB: {}", ab.num_messages());
}
