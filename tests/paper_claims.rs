//! End-to-end integration tests asserting the paper's headline results, in
//! two tiers:
//!
//! * reduced (CI-sized) reruns of the real experiments — the full-size runs
//!   live in the experiment binaries and benches; and
//! * **snapshot validation** of the committed full-size `results/*.json`
//!   files (the `snapshot_*` tests): the paper's orderings are re-asserted
//!   directly on the committed numbers, with no simulation at all, so a
//!   regenerated snapshot that quietly breaks a claim fails `cargo test`
//!   even when the reduced-scale runs still pass.
//!
//! The vendored serde facade has no deserializer, so the snapshot tests
//! carry a minimal reader for the pretty-printed array-of-flat-objects
//! format every experiment writes (see the `snapshots` module).

use wormcast::experiments::{fig1, fig2, fig34, steps};
use wormcast::prelude::*;

#[test]
fn section2_step_count_identities() {
    // RD = log2 N, EDN = k+m+4, DB = 4, AB = 3 — constructed schedules match
    // the closed forms on every evaluation size of the paper.
    for row in steps::run(&steps::default_shapes()) {
        for (name, constructed, analytical) in &row.counts {
            assert_eq!(
                constructed, analytical,
                "{name} on {:?}: {constructed} vs formula {analytical}",
                row.shape
            );
        }
    }
}

#[test]
fn fig1_scalability_claims_hold_at_reduced_scale() {
    let params = fig1::Fig1Params {
        sides: vec![4, 8, 10],
        length: 100,
        startup_us: 1.5,
        runs: 6,
        seed: 77,
    };
    let cells = params.run(&Runner::default()).cells;
    let bad = fig1::check_claims(&cells);
    assert!(bad.is_empty(), "Fig. 1 claims violated: {bad:?}");
}

#[test]
fn fig1_low_startup_variant_preserves_ordering() {
    // §3.1 also simulates Ts = 0.15us; the ordering DB/AB < EDN < RD must
    // survive, with smaller absolute gaps.
    let lat = |ts: f64, alg: Algorithm| -> f64 {
        let params = fig1::Fig1Params {
            sides: vec![8],
            length: 100,
            startup_us: ts,
            runs: 4,
            seed: 3,
        };
        let cells = params.run(&Runner::default()).cells;
        cells
            .iter()
            .find(|c| c.algorithm == alg.name())
            .unwrap()
            .latency_us
    };
    for ts in [1.5, 0.15] {
        let (rd, edn, db, ab) = (
            lat(ts, Algorithm::Rd),
            lat(ts, Algorithm::Edn),
            lat(ts, Algorithm::Db),
            lat(ts, Algorithm::Ab),
        );
        assert!(
            db < edn && db < rd,
            "Ts={ts}: DB {db} vs EDN {edn}, RD {rd}"
        );
        assert!(ab < edn && ab < rd, "Ts={ts}: AB {ab}");
    }
    // The RD-vs-DB gap shrinks with the cheaper start-up.
    let gap_hi = lat(1.5, Algorithm::Rd) - lat(1.5, Algorithm::Db);
    let gap_lo = lat(0.15, Algorithm::Rd) - lat(0.15, Algorithm::Db);
    assert!(
        gap_lo < gap_hi,
        "start-up gap should shrink: {gap_lo} vs {gap_hi}"
    );
}

#[test]
fn fig2_cv_orderings_hold_at_reduced_scale() {
    // The 64-node mesh is dominated by step-structure noise at this reduced
    // run count (see EXPERIMENTS.md); 256 and 512 nodes carry the claims.
    let params = fig2::Fig2Params {
        shapes: vec![[4, 4, 16], [8, 8, 8]],
        length: 100,
        startup_us: 1.5,
        runs: 25,
        broadcast_rate_per_node_per_ms: 0.7,
        seed: 5,
    };
    let cells = params.run(&Runner::default()).cells;
    let bad = fig2::check_claims(&cells);
    assert!(bad.is_empty(), "Fig. 2 claims violated: {bad:?}");
}

#[test]
fn fig3_load_sweep_claims_hold_at_reduced_scale() {
    let params = fig34::LoadSweepParams {
        shape: [8, 8, 8],
        loads: vec![0.5, 2.0, 5.0],
        length: 32,
        startup_us: 1.5,
        batch_size: 10,
        batches: 6,
        max_sim_ms: 120.0,
        release: ReleaseMode::AfterTailCrossing,
        seed: 5,
    };
    let cells = params.run(&Runner::default()).cells;
    let bad = fig34::check_claims(&cells, &params);
    assert!(bad.is_empty(), "Fig. 3 claims violated: {bad:?}");
}

#[test]
fn deterministic_experiments_are_reproducible() {
    let p = fig1::Fig1Params {
        sides: vec![4],
        length: 64,
        startup_us: 1.5,
        runs: 3,
        seed: 123,
    };
    let a = p.run(&Runner::new(1)).cells;
    let b = p.run(&Runner::new(3)).cells;
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.latency_us, y.latency_us);
        assert_eq!(x.algorithm, y.algorithm);
    }
}

#[test]
fn broadcast_latency_decomposes_into_steps() {
    // At zero load the network latency of each algorithm is bounded below by
    // steps·Ts and above by steps·(Ts + worst-path + body) — the paper's
    // start-up-dominated accounting.
    let mesh = Mesh::cube(4);
    let cfg = NetworkConfig::paper_default();
    let ts = cfg.startup.as_us();
    for alg in Algorithm::ALL {
        let steps = alg.theoretical_steps(&mesh) as f64;
        let o = run_single_broadcast(&mesh, cfg, alg, NodeId(21), 100);
        let per_step_max = ts + 24.0 * cfg.hop_time().as_us() + cfg.body_time(100).as_us();
        assert!(
            o.network_latency_us >= steps * ts,
            "{alg}: {} < {steps} * Ts",
            o.network_latency_us
        );
        assert!(
            o.network_latency_us <= steps * per_step_max + 1.0,
            "{alg}: {} too large",
            o.network_latency_us
        );
    }
}

#[test]
fn proposed_algorithms_send_fewer_longer_messages() {
    // The mechanism behind the paper's results: DB/AB trade many unicasts
    // for a few multidestination paths.
    let mesh = Mesh::cube(8);
    let rd = Algorithm::Rd.schedule(&mesh, NodeId(0));
    let edn = Algorithm::Edn.schedule(&mesh, NodeId(0));
    let db = Algorithm::Db.schedule(&mesh, NodeId(0));
    let ab = Algorithm::Ab.schedule(&mesh, NodeId(0));
    assert_eq!(rd.num_messages(), 511);
    assert_eq!(edn.num_messages(), 511);
    assert!(db.num_messages() < 250, "DB: {}", db.num_messages());
    assert!(ab.num_messages() < 100, "AB: {}", ab.num_messages());
}

// ---------------------------------------------------------------------------
// Committed-snapshot validation (fast path: reads results/*.json, no
// simulation). See the module doc above.
// ---------------------------------------------------------------------------

/// Minimal reader for the committed snapshot format: a pretty-printed JSON
/// array of objects with string/number/nested-array fields. Only the access
/// patterns the snapshot tests need are implemented.
mod snapshots {
    use std::collections::BTreeMap;
    use std::path::PathBuf;

    /// Load a committed snapshot and split it into per-object slices.
    pub fn objects(name: &str) -> Vec<String> {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("results")
            .join(name);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("committed snapshot {} missing: {e}", path.display()));
        split_objects(&text)
    }

    /// Top-level array elements of `text`, tracking brace depth and strings.
    fn split_objects(text: &str) -> Vec<String> {
        let mut out = Vec::new();
        let (mut depth, mut start, mut in_str, mut esc) = (0i32, None, false, false);
        for (i, c) in text.char_indices() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' => {
                    if depth == 0 {
                        start = Some(i);
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        out.push(text[start.take().unwrap()..=i].to_string());
                    }
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0, "unbalanced braces in snapshot");
        assert!(!out.is_empty(), "snapshot holds no objects");
        out
    }

    /// Numeric field `key` of one object (integers parse as f64 too).
    pub fn num(obj: &str, key: &str) -> f64 {
        let needle = format!("\"{key}\":");
        let at = obj
            .find(&needle)
            .unwrap_or_else(|| panic!("field {key} missing in {obj}"));
        let rest = obj[at + needle.len()..].trim_start();
        let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
        rest[..end]
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("field {key} not numeric ({e}): {obj}"))
    }

    /// String field `key` of one object.
    pub fn string(obj: &str, key: &str) -> String {
        let needle = format!("\"{key}\":");
        let at = obj
            .find(&needle)
            .unwrap_or_else(|| panic!("field {key} missing in {obj}"));
        let rest = obj[at + needle.len()..].trim_start();
        assert!(rest.starts_with('"'), "field {key} not a string: {obj}");
        rest[1..rest[1..].find('"').expect("unterminated string") + 1].to_string()
    }

    /// Group objects by an integer field, preserving one map per group value.
    pub fn by_num_key(objs: &[String], key: &str) -> BTreeMap<u64, Vec<String>> {
        let mut m: BTreeMap<u64, Vec<String>> = BTreeMap::new();
        for o in objs {
            m.entry(num(o, key) as u64).or_default().push(o.clone());
        }
        m
    }

    /// `algorithm` (or other string key) → numeric field, within one group.
    pub fn table(objs: &[String], skey: &str, nkey: &str) -> BTreeMap<String, f64> {
        objs.iter()
            .map(|o| (string(o, skey), num(o, nkey)))
            .collect()
    }
}

#[test]
fn snapshot_steps_constructed_matches_analytical() {
    // steps.json rows carry `[name, constructed, analytical]` triples: the
    // committed table must agree with the paper's closed forms (DB = 4,
    // AB = 3 at every size; constructed == analytical throughout).
    for row in snapshots::objects("steps.json") {
        let counts = &row[row.find("\"counts\":").expect("counts field")..];
        for alg in ["RD", "EDN", "DB", "AB"] {
            let at = counts
                .find(&format!("\"{alg}\""))
                .unwrap_or_else(|| panic!("{alg} missing in {row}"));
            let nums: Vec<u64> = counts[at..]
                .split(|c: char| !c.is_ascii_digit())
                .filter(|s| !s.is_empty())
                .take(2)
                .map(|s| s.parse().unwrap())
                .collect();
            let (constructed, analytical) = (nums[0], nums[1]);
            assert_eq!(constructed, analytical, "{alg} in {row}");
            match alg {
                "DB" => assert_eq!(constructed, 4),
                "AB" => assert_eq!(constructed, 3),
                "RD" => {
                    // Per-dimension recursive doubling: sum of ceil(log2 d).
                    let shape_at = row.find("\"shape\":").expect("shape field");
                    let shape_end = row[shape_at..].find(']').unwrap() + shape_at;
                    let log2_sum: u64 = row[shape_at..shape_end]
                        .split(|c: char| !c.is_ascii_digit())
                        .filter(|s| !s.is_empty())
                        .map(|s| {
                            let d: u64 = s.parse().unwrap();
                            u64::from(d.next_power_of_two().trailing_zeros())
                        })
                        .sum();
                    assert_eq!(constructed, log2_sum, "RD in {row}");
                }
                _ => {}
            }
        }
    }
}

#[test]
fn snapshot_fig1_latency_orderings() {
    // §3.1 at every committed network size: DB < EDN < RD and AB < EDN
    // (DB vs AB flips at 4096 nodes, so their relative order is not asserted).
    for name in ["fig1.json", "fig1-lowts.json"] {
        let objs = snapshots::objects(name);
        for (nodes, grp) in snapshots::by_num_key(&objs, "nodes") {
            let t = snapshots::table(&grp, "algorithm", "latency_us");
            assert!(t["DB"] < t["EDN"], "{name}@{nodes}: {t:?}");
            assert!(t["EDN"] < t["RD"], "{name}@{nodes}: {t:?}");
            assert!(t["AB"] < t["EDN"], "{name}@{nodes}: {t:?}");
        }
    }
    // The RD-vs-DB gap shrinks with the cheap start-up (Ts = 0.15 µs) at
    // every size: start-up dominates the baseline's cost.
    let hi = snapshots::objects("fig1.json");
    let lo = snapshots::objects("fig1-lowts.json");
    for (nodes, grp) in snapshots::by_num_key(&hi, "nodes") {
        let t_hi = snapshots::table(&grp, "algorithm", "latency_us");
        let t_lo = snapshots::table(
            &snapshots::by_num_key(&lo, "nodes")[&nodes],
            "algorithm",
            "latency_us",
        );
        assert!(
            t_lo["RD"] - t_lo["DB"] < t_hi["RD"] - t_hi["DB"],
            "gap at {nodes} nodes: {t_lo:?} vs {t_hi:?}"
        );
    }
}

#[test]
fn snapshot_fig1_scale_reaches_the_large_regime() {
    // The sharded-engine sweep: the committed fig1-scale.json must carry at
    // least one mesh at or beyond 262,144 nodes (64×64×64), every cell a
    // positive latency, and DB/AB must stay near-flat across the whole size
    // range — the paper's scalability claim, extended to the 10⁵–10⁶-node
    // regime the sweep exists for.
    let objs = snapshots::objects("fig1-scale.json");
    let mut sizes: Vec<u64> = objs
        .iter()
        .map(|o| snapshots::num(o, "nodes") as u64)
        .collect();
    sizes.sort_unstable();
    sizes.dedup();
    assert!(
        *sizes.last().unwrap() >= 262_144,
        "largest committed mesh too small: {sizes:?}"
    );
    for o in &objs {
        assert!(snapshots::num(o, "latency_us") > 0.0, "{o}");
        assert!(snapshots::num(o, "shards") >= 1.0, "{o}");
    }
    let (first, last) = (sizes[0], *sizes.last().unwrap());
    assert!(last >= first * 8, "size range too narrow: {sizes:?}");
    for alg in ["DB", "AB"] {
        let lat = |nodes: u64| {
            snapshots::table(
                &snapshots::by_num_key(&objs, "nodes")[&nodes],
                "algorithm",
                "latency_us",
            )[alg]
        };
        assert!(
            lat(last) < 4.0 * lat(first),
            "{alg} latency not scalable: {} us at N={first} vs {} us at N={last}",
            lat(first),
            lat(last)
        );
    }
}

#[test]
fn snapshot_fig2_cv_orderings() {
    // §3.2 beyond 64 nodes (where step-structure noise dominates): the
    // multidestination algorithms deliver more uniformly — AB < DB < EDN < RD
    // in coefficient of variation. tables.json carries the same rows.
    for name in ["fig2.json", "tables.json"] {
        let objs = snapshots::objects(name);
        for (nodes, grp) in snapshots::by_num_key(&objs, "nodes") {
            if nodes < 256 {
                continue;
            }
            let t = snapshots::table(&grp, "algorithm", "cv");
            assert!(
                t["AB"] < t["DB"] && t["DB"] < t["EDN"] && t["EDN"] < t["RD"],
                "{name}@{nodes}: {t:?}"
            );
        }
    }
}

#[test]
fn snapshot_faults_reliability() {
    let objs = snapshots::objects("faults.json");
    let mut prev: std::collections::BTreeMap<String, f64> = Default::default();
    for (_, grp) in snapshots::by_num_key(&objs, "nodes") {
        let mut rates: Vec<f64> = grp.iter().map(|o| snapshots::num(o, "rate")).collect();
        rates.dedup();
        for o in &grp {
            let (rate, ratio) = (
                snapshots::num(o, "rate"),
                snapshots::num(o, "delivery_ratio"),
            );
            let alg = snapshots::string(o, "algorithm");
            if rate == 0.0 {
                assert_eq!(ratio, 1.0, "{alg} must be lossless without faults");
            } else {
                // Delivery degrades monotonically with the fault rate
                // (rows are committed in increasing-rate order per algorithm).
                if let Some(&p) = prev.get(&alg) {
                    assert!(ratio <= p, "{alg}@{rate}: {ratio} > {p}");
                }
            }
            prev.insert(alg, ratio);
        }
        // At every positive rate the unicast-based algorithms out-survive
        // the multidestination ones: a single dead link severs a whole
        // coded path's worth of receivers.
        for rate in rates.into_iter().filter(|&r| r > 0.0) {
            let at_rate: Vec<String> = grp
                .iter()
                .filter(|o| snapshots::num(o, "rate") == rate)
                .cloned()
                .collect();
            let t = snapshots::table(&at_rate, "algorithm", "delivery_ratio");
            for uni in ["RD", "EDN"] {
                for multi in ["DB", "AB"] {
                    assert!(t[uni] > t[multi], "rate {rate}: {t:?}");
                }
            }
        }
    }
}

#[test]
fn snapshot_multicast_claims() {
    // The CM extension's coded paths keep multicast latency nearly flat in
    // destination-set size, while SP's serial unicasts blow up and UM pays
    // the full broadcast; CM's overhead (extra non-member deliveries)
    // vanishes at the full set.
    let objs = snapshots::objects("multicast.json");
    let mut by_scheme: std::collections::BTreeMap<String, Vec<(f64, f64, f64)>> =
        Default::default();
    for o in &objs {
        by_scheme
            .entry(snapshots::string(o, "scheme"))
            .or_default()
            .push((
                snapshots::num(o, "set_size"),
                snapshots::num(o, "latency_us"),
                snapshots::num(o, "overhead"),
            ));
    }
    for scheme in ["UM", "CM", "SP"] {
        assert!(by_scheme.contains_key(scheme), "{scheme} missing");
    }
    for (set, lat, overhead) in &by_scheme["UM"] {
        assert_eq!(*overhead, 0.0, "UM delivers the full broadcast by design");
        let cm_lat = by_scheme["CM"].iter().find(|c| c.0 == *set).unwrap().1;
        if *set >= 50.0 {
            assert!(cm_lat < *lat, "CM flat vs UM at set {set}");
            let sp_lat = by_scheme["SP"].iter().find(|c| c.0 == *set).unwrap().1;
            assert!(cm_lat < sp_lat, "CM flat vs SP at set {set}");
        }
    }
    let cm_full = by_scheme["CM"].last().unwrap();
    assert_eq!(cm_full.2, 0.0, "CM overhead vanishes at the full set");
}

#[test]
fn snapshot_arrivals_percentiles() {
    // Node-level arrival profiles: percentiles are ordered within each
    // algorithm, and the median arrival keeps the Fig. 1 latency ordering.
    let objs = snapshots::objects("arrivals.json");
    let t = snapshots::table(&objs, "algorithm", "p50_us");
    assert!(
        t["AB"] < t["DB"] && t["DB"] < t["EDN"] && t["EDN"] < t["RD"],
        "median arrivals: {t:?}"
    );
    for o in &objs {
        let (p50, p95, p99, max) = (
            snapshots::num(o, "p50_us"),
            snapshots::num(o, "p95_us"),
            snapshots::num(o, "p99_us"),
            snapshots::num(o, "max_us"),
        );
        assert!(p50 <= p95 && p95 <= p99 && p99 <= max, "{o}");
    }
}

#[test]
fn snapshot_schedules_ramp_claims() {
    // schedules.json: delivered load vs time under a deterministic load
    // ramp, one row per (algorithm, time bin). Three claims are pinned:
    // the offered curve is identical across algorithms (common random
    // numbers — the schedule, not the algorithm, shapes the input), it is
    // ramp-shaped (later load bins above the first), and every algorithm
    // is lossless over the horizon (sum offered == sum delivered).
    let objs = snapshots::objects("schedules.json");
    let by_bin = snapshots::by_num_key(&objs, "bin");
    assert!(
        by_bin.len() >= 4,
        "enough bins to see the ramp: {}",
        by_bin.len()
    );
    for (bin, rows) in &by_bin {
        assert_eq!(rows.len(), 4, "bin {bin}: all four algorithms present");
        let offered: Vec<f64> = rows.iter().map(|o| snapshots::num(o, "offered")).collect();
        assert!(
            offered.windows(2).all(|w| w[0] == w[1]),
            "bin {bin}: offered counts identical across algorithms: {offered:?}"
        );
    }
    let mut per_alg: std::collections::BTreeMap<String, (f64, f64)> = Default::default();
    for o in &objs {
        let e = per_alg
            .entry(snapshots::string(o, "algorithm"))
            .or_default();
        e.0 += snapshots::num(o, "offered");
        e.1 += snapshots::num(o, "delivered");
    }
    assert_eq!(per_alg.len(), 4, "all four algorithms swept: {per_alg:?}");
    for (alg, (offered, delivered)) in &per_alg {
        assert!(offered > &0.0, "{alg}: nonzero offered load");
        assert_eq!(offered, delivered, "{alg}: lossless over the horizon");
    }
    // Ramp shape on the common offered curve: the peak bin clearly exceeds
    // the first (the committed default ramps 0.5 -> 2.5 msgs/node/ms).
    let offered_curve: Vec<f64> = by_bin
        .values()
        .map(|rows| snapshots::num(&rows[0], "offered_per_node_per_ms"))
        .collect();
    let peak = offered_curve.iter().cloned().fold(0.0, f64::max);
    assert!(
        peak > 1.5 * offered_curve[0] && offered_curve[0] > 0.0,
        "offered curve is ramp-shaped: {offered_curve:?}"
    );
}

#[test]
fn snapshot_fig34_load_sweeps_are_complete() {
    for name in ["fig3.json", "fig4.json"] {
        let objs = snapshots::objects(name);
        let mut per_alg: std::collections::BTreeMap<String, u32> = Default::default();
        for o in &objs {
            *per_alg
                .entry(snapshots::string(o, "algorithm"))
                .or_default() += 1;
            for key in [
                "load_per_node_per_ms",
                "mean_latency_ms",
                "throughput_msgs_per_ms",
            ] {
                assert!(snapshots::num(o, key) >= 0.0, "{name}: {key}");
            }
        }
        assert_eq!(per_alg.len(), 4, "{name}: all four algorithms swept");
        let n = per_alg.values().next().copied().unwrap();
        assert!(
            per_alg.values().all(|&c| c == n),
            "{name}: equal load points per algorithm: {per_alg:?}"
        );
    }
}

#[test]
fn snapshot_saturation_qab_dominates_ab_beyond_the_knee() {
    // The saturation lab's headline, re-asserted on the committed numbers:
    // the offered axis is strictly increasing and runs past AB's knee (the
    // first load where AB hits the time valve or delivers < 90% of what was
    // offered), and from the knee on QAB's delivered load weakly dominates
    // AB's (2% CRN tolerance — both algorithms replay identical arrival
    // processes at each load point).
    let objs = snapshots::objects("saturation.json");
    let curve = |alg: &str| -> Vec<(f64, f64, bool)> {
        objs.iter()
            .filter(|o| snapshots::string(o, "algorithm") == alg)
            .map(|o| {
                (
                    snapshots::num(o, "offered"),
                    snapshots::num(o, "delivered"),
                    o.contains("\"saturated\": true"),
                )
            })
            .collect()
    };
    let (db, ab, qab) = (curve("DB"), curve("AB"), curve("QAB"));
    assert!(!db.is_empty(), "DB swept");
    assert_eq!(ab.len(), qab.len(), "AB and QAB share the axis");
    for c in [&ab, &qab] {
        for w in c.windows(2) {
            assert!(
                w[1].0 > w[0].0,
                "offered axis must be strictly increasing: {:?}",
                c.iter().map(|p| p.0).collect::<Vec<_>>()
            );
        }
        for &(offered, delivered, _) in c {
            assert!(
                delivered.is_finite() && delivered > 0.0,
                "delivered load at offered {offered} must be positive"
            );
        }
    }
    let knee = ab
        .iter()
        .position(|&(offered, delivered, saturated)| saturated || delivered < 0.9 * offered)
        .expect("the committed axis must run past AB's knee");
    for (a, q) in ab[knee..].iter().zip(&qab[knee..]) {
        assert_eq!(a.0, q.0, "aligned load points");
        assert!(
            q.1 >= a.1 * 0.98,
            "beyond the knee (offered {}): QAB delivered {} < AB {}",
            a.0,
            q.1,
            a.1
        );
    }
}

#[test]
fn snapshot_faults_qab_outlives_ab() {
    // The fault lab's headline for the fifth algorithm, on the committed
    // numbers: at every positive fault rate — the top rate above all — QAB's
    // re-planned negative-first detours deliver to more receivers than AB's
    // fixed west-first staircases, and QAB never stalls where AB does.
    let objs = snapshots::objects("faults.json");
    let mut rates: Vec<f64> = objs.iter().map(|o| snapshots::num(o, "rate")).collect();
    rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
    rates.dedup();
    let top = *rates.last().unwrap();
    assert!(top > 0.0, "the sweep must include a positive fault rate");
    for &rate in rates.iter().filter(|&&r| r > 0.0) {
        let at_rate: Vec<String> = objs
            .iter()
            .filter(|o| snapshots::num(o, "rate") == rate)
            .cloned()
            .collect();
        let t = snapshots::table(&at_rate, "algorithm", "delivery_ratio");
        assert!(
            t["QAB"] > t["AB"],
            "rate {rate}: QAB delivery ratio {} <= AB {}",
            t["QAB"],
            t["AB"]
        );
        let stalled = snapshots::table(&at_rate, "algorithm", "stalled");
        assert!(
            stalled["QAB"] <= stalled["AB"],
            "rate {rate}: QAB stalls {} > AB {}",
            stalled["QAB"],
            stalled["AB"]
        );
    }
}
