//! Property-based tests over the whole stack: random meshes, sources and
//! traffic, checked against the library's core invariants.

use proptest::prelude::*;
use wormcast::prelude::*;
use wormcast::routing::{is_dor_legal, DimensionOrdered, PlanarWestFirst, WestFirst};
use wormcast::topology::straight_walk;
use wormcast::workload::run_single_broadcast_sharded;

/// Strategy: a modest 3D mesh (2..=6 per dimension; the paper's algorithms
/// need at least a 2x2 plane and two Z planes) plus a node in it.
fn mesh3d_and_node() -> impl Strategy<Value = (Mesh, NodeId)> {
    (2u16..=6, 2u16..=6, 2u16..=6).prop_flat_map(|(x, y, z)| {
        let mesh = Mesh::new(&[x, y, z]);
        let n = mesh.num_nodes() as u32;
        (Just(mesh), (0..n).prop_map(NodeId))
    })
}

/// Strategy: a 2D mesh and two nodes.
fn mesh2d_and_pair() -> impl Strategy<Value = (Mesh, NodeId, NodeId)> {
    (2u16..=9, 2u16..=9).prop_flat_map(|(x, y)| {
        let mesh = Mesh::new(&[x, y]);
        let n = mesh.num_nodes() as u32;
        (Just(mesh), (0..n).prop_map(NodeId), (0..n).prop_map(NodeId))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every algorithm's schedule is valid (exactly-once coverage, causal
    /// senders, port budget) from any source on any supported mesh; on
    /// paper-scale shapes (every dimension >= 4) the constructed step count
    /// matches the closed form.
    #[test]
    fn all_schedules_validate((mesh, src) in mesh3d_and_node()) {
        let paper_scale = mesh.dims().iter().all(|&d| d >= 4);
        for alg in Algorithm::ALL {
            let s = alg.schedule(&mesh, src);
            prop_assert!(s.validate(&mesh, alg.ports()).is_ok(),
                "{alg} invalid from {src} on {:?}", mesh.dims());
            if paper_scale || matches!(alg, Algorithm::Rd | Algorithm::Ab) {
                prop_assert_eq!(s.steps(), alg.theoretical_steps(&mesh),
                    "{} steps on {:?}", alg, mesh.dims());
            }
        }
    }

    /// DOR paths are minimal, dimension-ordered and cycle-free.
    #[test]
    fn dor_paths_are_minimal_and_legal((mesh, a, b) in mesh2d_and_pair()) {
        prop_assume!(a != b);
        let p = dor_path(&mesh, a, b);
        prop_assert!(p.is_minimal(&mesh));
        prop_assert!(is_dor_legal(&mesh, &p));
        prop_assert!(!p.has_cycle(&mesh));
    }

    /// Greedy walks under every routing function reach the destination in
    /// exactly `distance` hops from any (src, dst) pair — productivity and
    /// connectedness of the routing relations.
    #[test]
    fn routing_functions_are_minimal((mesh, a, b) in mesh2d_and_pair()) {
        prop_assume!(a != b);
        let rfs: Vec<Box<dyn RoutingFunction>> = vec![
            Box::new(DimensionOrdered),
            Box::new(WestFirst),
            Box::new(wormcast::routing::OddEven),
        ];
        for rf in &rfs {
            for pick_last in [false, true] {
                let mut cur = a;
                let mut hops = 0u32;
                while cur != b {
                    let c = rf.candidates(&mesh, a, cur, None, b);
                    prop_assert!(!c.is_empty(), "{} dead end", rf.name());
                    let pick = if pick_last { c.len() - 1 } else { 0 };
                    cur = mesh.channel_endpoints(c[pick]).1;
                    hops += 1;
                    prop_assert!(hops <= mesh.distance(a, b), "{} detour", rf.name());
                }
                prop_assert_eq!(hops, mesh.distance(a, b));
            }
        }
    }

    /// The 3D planar-west-first function is likewise minimal.
    #[test]
    fn planar_west_first_minimal((mesh, src) in mesh3d_and_node()) {
        let rf = PlanarWestFirst;
        let dst = NodeId((src.0 + 1) % mesh.num_nodes() as u32);
        prop_assume!(src != dst);
        let mut cur = src;
        let mut hops = 0u32;
        while cur != dst {
            let c = rf.candidates(&mesh, src, cur, None, dst);
            prop_assert!(!c.is_empty());
            cur = mesh.channel_endpoints(c[0]).1;
            hops += 1;
            prop_assert!(hops <= mesh.distance(src, dst));
        }
        prop_assert_eq!(hops, mesh.distance(src, dst));
    }

    /// straight_walk inverts cleanly and lands on its target.
    #[test]
    fn straight_walk_roundtrip(x0 in 0u16..8, x1 in 0u16..8, y in 0u16..8) {
        let a = Coord::xy(x0, y);
        let b = Coord::xy(x1, y);
        let w = straight_walk(&a, &b);
        prop_assert_eq!(w.len(), (x0 as i32 - x1 as i32).unsigned_abs() as usize);
        if let Some(last) = w.last() {
            prop_assert_eq!(*last, b);
        }
    }

    /// A single broadcast executed on the network delivers to every node
    /// exactly once and the measured network latency bounds every arrival.
    #[test]
    fn executed_broadcast_reaches_everyone((mesh, src) in mesh3d_and_node()) {
        prop_assume!(mesh.dim_size(0) >= 2 && mesh.dim_size(1) >= 2);
        for alg in Algorithm::ALL {
            let o = run_single_broadcast(
                &mesh,
                NetworkConfig::paper_default(),
                alg,
                src,
                16,
            );
            prop_assert!(o.network_latency_us > 0.0);
            prop_assert!(o.mean_latency_us <= o.network_latency_us);
            prop_assert!(o.cv >= 0.0);
        }
    }

    /// Metamorphic: a QAB broadcast measures identically however the mesh
    /// is sharded — the queue-aware arbitration tie-breaks by *global*
    /// channel index, so the spatial partition must never leak into the
    /// outcome (the `--shards` role-equality gate, as a property).
    #[test]
    fn qab_broadcast_shard_count_is_unobservable((mesh, src) in mesh3d_and_node(), shards in 2usize..=4) {
        prop_assume!(usize::from(mesh.dim_size(mesh.ndims() - 1)) >= shards);
        let cfg = NetworkConfig::paper_default();
        let base = run_single_broadcast(&mesh, cfg, Algorithm::Qab, src, 16);
        let sharded = run_single_broadcast_sharded(&mesh, cfg, Algorithm::Qab, src, 16, shards)
            .expect("admissible shard count");
        prop_assert_eq!(sharded.network_latency_us.to_bits(), base.network_latency_us.to_bits(),
            "{:?} from {src} at {shards} shards", mesh.dims());
        prop_assert_eq!(sharded.mean_latency_us.to_bits(), base.mean_latency_us.to_bits());
        prop_assert_eq!(sharded.cv.to_bits(), base.cv.to_bits());
    }

    /// Node/coordinate indexing round-trips on random meshes.
    #[test]
    fn coord_roundtrip(x in 1u16..10, y in 1u16..10, z in 1u16..10) {
        let mesh = Mesh::new(&[x, y, z]);
        for n in (0..mesh.num_nodes() as u32).step_by(7) {
            let c = mesh.coord_of(NodeId(n));
            prop_assert_eq!(mesh.node_at(&c), NodeId(n));
        }
    }

    /// Batch-means CI covers the true mean of a known uniform stream.
    #[test]
    fn batch_means_covers_uniform(seed in 0u64..1000) {
        let mut rng = SimRng::new(seed);
        let mut b = BatchMeans::new(50, 1);
        for _ in 0..5000 {
            b.push(rng.unit());
        }
        let e = b.estimate().unwrap();
        // 95% CI: allow generous slack for the 5% of seeds outside it.
        prop_assert!((e.mean - 0.5).abs() < 0.05, "mean {}", e.mean);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random unicast traffic conserves messages and leaves no channel held
    /// (engine-level invariant, via the public API).
    #[test]
    fn engine_conserves_random_traffic(seed in 0u64..500, n_msgs in 1usize..40) {
        let mesh = Mesh::cube(4);
        let mut net = Network::new(
            mesh.clone(),
            NetworkConfig::paper_default(),
            Box::new(DimensionOrdered),
        );
        let mut rng = SimRng::new(seed);
        let mut injected = 0u64;
        for i in 0..n_msgs {
            let src = NodeId(rng.index(64) as u32);
            let dst = NodeId(rng.index(64) as u32);
            if src == dst {
                continue;
            }
            let p = dor_path(&mesh, src, dst);
            net.inject_at(
                SimTime::from_us(i as f64 * 0.3),
                MessageSpec {
                    src,
                    route: Route::Fixed(CodedPath::unicast(&mesh, p)),
                    length: 1 + rng.index(64) as u64,
                    op: OpId(i as u64),
                    tag: 0,
                    charge_startup: true,
                },
            );
            injected += 1;
        }
        net.run_until_idle();
        let c = net.counters();
        prop_assert_eq!(c.injected, injected);
        prop_assert_eq!(c.completed, injected);
        prop_assert_eq!(net.in_flight(), 0);
        net.check_invariants();
    }
}
