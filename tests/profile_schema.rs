//! Schema and determinism validation for the `--profile` report.
//!
//! Contract (documented in DESIGN.md §4.7): the report is hand-rendered so
//! that every execution-dependent datum (span wall clocks, per-shard
//! series, harness wall clocks and queue depths) lands on a line whose
//! first key starts with `nd_`. Stripping those lines (`strip_nd`, or
//! `grep -v '"nd_'` in `ci.sh`) yields a byte-comparable skeleton that
//! must be identical across `--jobs` and `--shards` for fixed physics.
//! These tests enforce the contract in-process; `ci.sh` re-runs the
//! env-gated test below against a report freshly produced by the release
//! `fig1` binary (path handed over via `WORMCAST_PROFILE_FILE`).

use wormcast::experiments::fig1;
use wormcast::prelude::*;
use wormcast::telemetry::{
    strip_nd, MetricId, MetricsRegistry, ProfileReport, Profiler, PROFILE_SCHEMA,
};
use wormcast::workload::run_single_broadcast_sharded_observed;

/// Build a profile report the way the drivers do: run fig1 under `jobs`
/// workers with metric scraping on, merge every cell frame's registry in
/// cell order, and wrap it in the standard driver span tree.
fn fig1_report(jobs: usize) -> ProfileReport {
    let params = fig1::Fig1Params {
        sides: vec![4],
        length: 32,
        startup_us: 1.5,
        runs: 4,
        seed: 7,
    };
    let spec = TelemetrySpec {
        profile: true,
        ..TelemetrySpec::default()
    };
    let (_, frames) = params.run((&Runner::new(jobs), &spec)).into_parts();
    assert!(!frames.is_empty(), "profiled run produces frames");
    let mut metrics = MetricsRegistry::new();
    for f in &frames {
        metrics.merge(&f.frame.metrics);
    }
    let mut p = Profiler::new();
    p.open("fig1");
    p.phase("setup");
    p.phase("run");
    p.phase("merge");
    p.phase("emit");
    let (spans, nd_wall) = p.finish();
    ProfileReport::new("fig1", spans, nd_wall, metrics)
}

/// One sharded broadcast's scraped registry, wrapped in the driver spans.
fn sharded_report(shards: usize) -> ProfileReport {
    let mesh = Mesh::cube(8);
    let cfg = NetworkConfig::paper_default();
    let spec = TelemetrySpec {
        profile: true,
        ..TelemetrySpec::default()
    };
    let observe = Observe::new(&spec, 0);
    let (outcome, frame) = run_single_broadcast_sharded_observed(
        &mesh,
        cfg,
        Algorithm::Db,
        NodeId(0),
        100,
        shards,
        Some(observe),
    )
    .expect("valid config");
    assert!(outcome.network_latency_us > 0.0);
    let frame = frame.expect("observed run returns a frame");
    let mut p = Profiler::new();
    p.open("fig1-scale");
    p.phase("setup");
    p.phase("run");
    p.phase("merge");
    p.phase("emit");
    let (spans, nd_wall) = p.finish();
    ProfileReport::new("fig1-scale", spans, nd_wall, frame.metrics)
}

/// Validate the line-level report layout shared by every producer. The
/// vendored serde facade has no deserializer, so this is deliberately a
/// line-level check — the same one the env-gated CI test applies to
/// binary-produced reports.
fn validate_report_json(json: &str, context: &str) {
    assert!(json.starts_with("{\n"), "{context}: not a JSON object");
    assert!(json.ends_with("}\n"), "{context}: unterminated object");
    assert!(
        json.contains(&format!("\"schema\": {PROFILE_SCHEMA},")),
        "{context}: missing schema version"
    );
    assert!(json.contains("\"tool\": \"wormcast\","), "{context}");
    assert!(json.contains("\"kind\": \"profile\","), "{context}");
    for phase in ["setup", "run", "merge", "emit"] {
        assert!(
            json.contains(&format!("\"name\": \"{phase}\"")),
            "{context}: missing driver phase {phase}"
        );
    }
    let metric_lines = json.lines().filter(|l| l.contains("\"id\": \"")).count();
    assert_eq!(
        metric_lines,
        MetricId::ALL.len(),
        "{context}: metrics array must list the full catalog"
    );
    assert!(
        json.lines().any(|l| l.contains("\"nd_span_wall_ns\"")),
        "{context}: missing span wall-clock line"
    );
    assert!(
        json.lines().any(|l| l.contains("\"nd_series\"")),
        "{context}: missing nd series line"
    );
    // Every metric id in the catalog appears by name.
    for id in MetricId::ALL {
        assert!(
            json.contains(&format!("\"id\": \"{}\"", id.name())),
            "{context}: catalog missing {}",
            id.name()
        );
    }
}

#[test]
fn fig1_report_skeleton_is_byte_identical_across_job_counts() {
    let a = fig1_report(1).to_json();
    let b = fig1_report(4).to_json();
    validate_report_json(&a, "jobs=1");
    validate_report_json(&b, "jobs=4");
    assert_eq!(
        strip_nd(&a),
        strip_nd(&b),
        "profile skeleton depends on --jobs"
    );
}

#[test]
fn sharded_report_skeleton_is_byte_identical_across_shard_counts() {
    let a = sharded_report(1).to_json();
    let b = sharded_report(4).to_json();
    validate_report_json(&a, "shards=1");
    validate_report_json(&b, "shards=4");
    assert_eq!(
        strip_nd(&a),
        strip_nd(&b),
        "profile skeleton depends on --shards"
    );
}

#[test]
fn sharded_report_carries_per_shard_series_in_json_and_prom() {
    let r = sharded_report(4);
    let json = r.to_json();
    let prom = r.to_prom();
    for s in 0..4 {
        assert!(
            json.contains(&format!("shard_barrier_wait_ns{{shard=\\\"{s}\\\"}}")),
            "JSON nd series missing shard {s} barrier wait"
        );
        assert!(
            prom.contains(&format!("shard_barrier_wait_ns{{shard=\"{s}\"}}")),
            "prom exposition missing shard {s} barrier wait"
        );
    }
    assert!(
        prom.contains("shard_arena_msgs_highwater"),
        "prom exposition missing the shard arena high-water gauge"
    );
    assert!(
        prom.contains("engine_arena_msgs_highwater"),
        "prom exposition missing the engine arena high-water gauge"
    );
}

#[test]
fn deterministic_metric_values_do_not_depend_on_jobs() {
    let a = fig1_report(1);
    let b = fig1_report(4);
    for &id in MetricId::ALL.iter().filter(|id| id.deterministic()) {
        assert_eq!(
            a.metrics.counter_total(id),
            b.metrics.counter_total(id),
            "deterministic metric {} depends on --jobs",
            id.name()
        );
    }
    assert!(
        a.metrics
            .counter_total(MetricId::EngineWheelEventsScheduled)
            > 0,
        "engine instrumentation recorded no scheduled events"
    );
    assert!(
        a.metrics.counter_total(MetricId::HarnessReplications) > 0,
        "harness instrumentation recorded no replications"
    );
}

#[test]
fn profiling_does_not_change_physics() {
    // Compiled-in instrumentation must be inert for results: the same run
    // with and without metric scraping yields byte-identical cells.
    let params = fig1::Fig1Params {
        sides: vec![4],
        length: 32,
        startup_us: 1.5,
        runs: 4,
        seed: 7,
    };
    let plain = serde_json::to_string(&params.run(&Runner::new(1)).cells).expect("serialize");
    let spec = TelemetrySpec {
        profile: true,
        ..TelemetrySpec::default()
    };
    let profiled =
        serde_json::to_string(&params.run((&Runner::new(1), &spec)).cells).expect("serialize");
    assert_eq!(plain, profiled, "profiling perturbed the physics");
}

/// ci.sh runs the release `fig1` binary with `--profile`, then re-runs this
/// test with `WORMCAST_PROFILE_FILE` pointing at the produced report — the
/// end-to-end check that the shipped binaries emit schema-valid profiles
/// with a populated Prometheus sibling.
#[test]
fn external_profile_file_validates_when_provided() {
    let Ok(path) = std::env::var("WORMCAST_PROFILE_FILE") else {
        return;
    };
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read WORMCAST_PROFILE_FILE={path}: {e}"));
    validate_report_json(&json, &path);
    let prom_path = std::path::Path::new(&path).with_extension("prom");
    let prom = std::fs::read_to_string(&prom_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", prom_path.display()));
    assert!(
        prom.contains("# TYPE"),
        "{}: missing Prometheus TYPE headers",
        prom_path.display()
    );
    println!("validated {path} (+ {})", prom_path.display());
}
