//! Validates the engine micro-bench report: the committed
//! `results/BENCH_engine.json` (and, when `WORMCAST_BENCH_JSON` points at a
//! freshly generated report, that file too — the ci.sh bench-smoke path)
//! must parse as the vendored Criterion schema and contain the
//! classic-vs-active-set comparison the engine rewrite is judged by.
//!
//! The vendored serde facade cannot deserialize, so this uses a scanner
//! matched to the report's fixed machine-generated shape: a JSON array with
//! one flat record per line carrying `id`, `mean_ns`, `min_ns`, `max_ns`,
//! `samples` and `throughput`.

use std::path::Path;

#[derive(Debug)]
struct BenchRecord {
    id: String,
    mean_ns: f64,
    samples: u64,
}

/// Pull `"key": <value>` out of one record line, up to the next `,` or `}`.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim())
}

fn parse_report(path: &Path) -> Vec<BenchRecord> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("{}: unreadable bench report: {e}", path.display()));
    let trimmed = text.trim();
    assert!(
        trimmed.starts_with('[') && trimmed.ends_with(']'),
        "{}: report is not a JSON array",
        path.display()
    );
    let mut records = Vec::new();
    for line in text.lines().filter(|l| l.contains("\"id\":")) {
        let id = field(line, "id")
            .and_then(|v| v.strip_prefix('"'))
            .and_then(|v| v.strip_suffix('"'))
            .unwrap_or_else(|| panic!("{}: record without string id: {line}", path.display()))
            .to_string();
        let mean_ns: f64 = field(line, "mean_ns")
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{id}: mean_ns is not a number"));
        let samples: u64 = field(line, "samples")
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{id}: samples is not an integer"));
        records.push(BenchRecord {
            id,
            mean_ns,
            samples,
        });
    }
    assert!(!records.is_empty(), "{}: empty report", path.display());
    records
}

fn validate(path: &Path) {
    let records = parse_report(path);
    for r in &records {
        assert!(r.mean_ns > 0.0, "{}: non-positive mean", r.id);
        assert!(r.samples > 0, "{}: no samples", r.id);
    }
    let mean_of = |needle: &str| {
        records
            .iter()
            .find(|r| r.id.contains(needle))
            .map(|r| r.mean_ns)
    };
    let classic = mean_of("engine_compare/mixed_8x8x8_0.03_classic_heap")
        .expect("report carries the classic-engine baseline");
    let active = mean_of("engine_compare/mixed_8x8x8_0.03_active_set")
        .expect("report carries the active-set measurement");
    // Guard against regressions that make the rewrite pointless; the
    // committed report documents the actual measured ratio.
    assert!(
        active < classic,
        "active-set engine slower than the classic heap stepper \
         ({active:.0} ns vs {classic:.0} ns)"
    );
}

/// The sharded-scaling report: same schema, different contract. Shard
/// scaling is a property of the generating machine's core count — a
/// single-core host measures barrier overhead, not speedup — so this
/// validates shape and coverage (the un-sharded baseline plus the full
/// 1/2/4/8 shard ladder at the 64×64×64 flood), never a cross-count
/// ordering. Every sharded row must additionally carry the measured
/// barrier wait in its `extra` object — the observability PR's contract
/// that synchronization cost is reported, not inferred.
fn validate_parallel(path: &Path) {
    let records = parse_report(path);
    for r in &records {
        assert!(r.mean_ns > 0.0, "{}: non-positive mean", r.id);
        assert!(r.samples > 0, "{}: no samples", r.id);
    }
    let has = |needle: &str| records.iter().any(|r| r.id.contains(needle));
    assert!(
        has("engine_parallel/mesh64_flood_single_engine"),
        "report carries the un-sharded baseline"
    );
    let text = std::fs::read_to_string(path).expect("re-read report");
    for shards in [1, 2, 4, 8] {
        let id = format!("engine_parallel/mesh64_flood_sharded/{shards}");
        assert!(has(&id), "report carries the {shards}-shard measurement");
        let line = text
            .lines()
            .find(|l| l.contains(&id))
            .expect("row line exists");
        let wait: f64 = field(line, "barrier_wait_ns")
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{id}: row lacks a measured barrier_wait_ns extra"));
        assert!(wait >= 0.0, "{id}: negative barrier wait ({wait})");
    }
}

/// The telemetry-overhead report: the `off` row is the exact unobserved
/// code path, so with instrumentation compiled in it must stay within
/// noise of (never meaningfully above) every observed configuration, and
/// the registry scrape (`profile`) must stay close to the plain
/// histogram+heatmap sinks — the registry is counters and maxes, not a
/// new collection pass.
fn validate_telemetry(path: &Path) {
    let records = parse_report(path);
    let mean_of = |needle: &str| {
        records
            .iter()
            .find(|r| r.id == format!("telemetry_single_broadcast/{needle}"))
            .map(|r| r.mean_ns)
            .unwrap_or_else(|| panic!("report lacks the {needle} row"))
    };
    let off = mean_of("off");
    let histograms = mean_of("histograms");
    let profile = mean_of("profile");
    mean_of("full_events");
    // Generous noise margin: the benches run at sample_size 10 on shared
    // machines. What we guard is the *shape* — the off path carrying
    // observation cost, or the registry dwarfing the sinks it rides on.
    assert!(
        off <= histograms * 1.25,
        "off-path slower than observed runs beyond noise ({off:.0} vs {histograms:.0} ns)"
    );
    assert!(
        off <= profile * 1.25,
        "off-path slower than profiled runs beyond noise ({off:.0} vs {profile:.0} ns)"
    );
    assert!(
        profile <= histograms * 1.5,
        "registry scrape dominates the sink cost ({profile:.0} vs {histograms:.0} ns)"
    );
}

/// The serve-layer report: one cold row (fresh request, engine run) and
/// one warm row (cache replay) over the same scenario shape, each with a
/// measured `p99_ns` tail extra. The contract is the *shape*: a warm
/// answer does strictly less work than a cold one (same canonicalize +
/// hash, no engine run), so its mean must not exceed the cold mean.
fn validate_serve(path: &Path) {
    let records = parse_report(path);
    for r in &records {
        assert!(r.mean_ns > 0.0, "{}: non-positive mean", r.id);
        assert!(r.samples > 0, "{}: no samples", r.id);
    }
    let mean_of = |needle: &str| {
        records
            .iter()
            .find(|r| r.id == format!("serve/{needle}"))
            .map(|r| r.mean_ns)
            .unwrap_or_else(|| panic!("report lacks the {needle} row"))
    };
    let cold = mean_of("cold_4x4_db");
    let warm = mean_of("warm_4x4_db");
    assert!(
        warm <= cold,
        "cache replay no faster than a cold engine run ({warm:.0} vs {cold:.0} ns)"
    );
    let text = std::fs::read_to_string(path).expect("re-read report");
    for row in ["serve/cold_4x4_db", "serve/warm_4x4_db"] {
        let line = text.lines().find(|l| l.contains(row)).expect("row exists");
        let p99: f64 = field(line, "p99_ns")
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{row}: row lacks a measured p99_ns extra"));
        assert!(p99 > 0.0, "{row}: non-positive p99 ({p99})");
    }
}

#[test]
fn committed_engine_bench_report_is_valid() {
    validate(&Path::new(env!("CARGO_MANIFEST_DIR")).join("results/BENCH_engine.json"));
}

#[test]
fn committed_parallel_bench_report_is_valid() {
    validate_parallel(
        &Path::new(env!("CARGO_MANIFEST_DIR")).join("results/BENCH_engine_parallel.json"),
    );
}

#[test]
fn committed_telemetry_bench_report_is_valid() {
    validate_telemetry(&Path::new(env!("CARGO_MANIFEST_DIR")).join("results/BENCH_telemetry.json"));
}

#[test]
fn committed_serve_bench_report_is_valid() {
    validate_serve(&Path::new(env!("CARGO_MANIFEST_DIR")).join("results/BENCH_serve.json"));
}

#[test]
fn env_provided_serve_bench_report_is_valid() {
    // Set by ci.sh's serve bench smoke; absent otherwise.
    if let Ok(path) = std::env::var("WORMCAST_BENCH_SERVE_JSON") {
        validate_serve(Path::new(&path));
    }
}

#[test]
fn env_provided_bench_report_is_valid() {
    // Set by ci.sh's bench smoke to the just-generated report; absent in a
    // plain `cargo test` run.
    if let Ok(path) = std::env::var("WORMCAST_BENCH_JSON") {
        validate(Path::new(&path));
    }
}

#[test]
fn env_provided_parallel_bench_report_is_valid() {
    // Set by ci.sh's engine_parallel bench smoke; absent otherwise.
    if let Ok(path) = std::env::var("WORMCAST_BENCH_PARALLEL_JSON") {
        validate_parallel(Path::new(&path));
    }
}
