//! Schema checks for the simcheck campaign report.
//!
//! `results/simcheck.json` is a single object with fixed-order scalar
//! tallies plus a `failures` array (empty on a clean campaign). The report
//! is hand-rendered (no serde) and deliberately contains no wall-clock
//! data, so the same campaign reproduces it byte for byte — ci.sh runs the
//! release binary twice and `cmp`s the outputs, then re-runs this test with
//! `WORMCAST_SIMCHECK_FILE` pointing at the produced JSON.

use wormcast_simcheck::{campaign, Report};

/// Field keys every report must carry, in serialization order.
const REQUIRED_KEYS: &[&str] = &[
    "\"seed\":",
    "\"count\":",
    "\"differential\":",
    "\"invariant_only\":",
    "\"skipped\":",
    "\"violations\":",
    "\"mismatches\":",
    "\"panics\":",
    "\"failures\":",
];

fn validate_simcheck_json(text: &str, context: &str) {
    let text = text.trim();
    assert!(
        text.starts_with('{') && text.ends_with('}'),
        "{context}: expected a single report object"
    );
    let mut last = 0;
    for key in REQUIRED_KEYS {
        assert_eq!(
            text.matches(key).count(),
            1,
            "{context}: key {key} must appear exactly once"
        );
        let at = text.find(key).unwrap();
        assert!(at > last, "{context}: key {key} out of order");
        last = at;
    }
    assert_eq!(
        text.matches('{').count(),
        text.matches('}').count(),
        "{context}: unbalanced braces"
    );
}

#[test]
fn generated_report_serializes_with_the_full_schema() {
    let report = campaign(2005, 8, 0);
    assert!(report.is_clean(), "{:?}", report.failures);
    validate_simcheck_json(&report.to_json(), "generated report");
}

#[test]
fn report_rendering_is_deterministic() {
    let a = campaign(2005, 8, 0);
    let b = campaign(2005, 8, 0);
    assert_eq!(a.to_json(), b.to_json(), "same campaign, same bytes");
    // And sensitive to the campaign parameters (not a constant string).
    let c = campaign(7, 8, 0);
    assert_ne!(a.to_json(), c.to_json());
}

#[test]
fn committed_snapshot_is_a_clean_campaign() {
    // The snapshot in results/ must always record a clean, untruncated
    // default campaign: seed 2005, 200 scenarios, zero findings.
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join("simcheck.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("committed snapshot {} missing: {e}", path.display()));
    validate_simcheck_json(&text, "results/simcheck.json");
    for want in [
        "\"seed\": 2005",
        "\"count\": 200",
        "\"violations\": 0",
        "\"mismatches\": 0",
        "\"panics\": 0",
        "\"skipped\": 0",
        "\"failures\": []",
    ] {
        assert!(text.contains(want), "snapshot drifted: missing `{want}`");
    }
    // Tallies are consistent without parsing: a clean report re-rendered
    // from its own numbers must reproduce the committed bytes.
    let grab = |key: &str| -> u64 {
        let at = text.find(key).unwrap() + key.len();
        text[at..]
            .trim_start()
            .split(|c: char| !c.is_ascii_digit())
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    let rebuilt = Report {
        seed: grab("\"seed\":"),
        count: grab("\"count\":"),
        differential: grab("\"differential\":"),
        invariant_only: grab("\"invariant_only\":"),
        ..Report::default()
    };
    assert_eq!(rebuilt.to_json(), text, "committed bytes re-render exactly");
}

/// ci.sh smoke hook: validate the file the release binary just produced.
#[test]
fn external_simcheck_file_validates_when_provided() {
    let Ok(path) = std::env::var("WORMCAST_SIMCHECK_FILE") else {
        return;
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read WORMCAST_SIMCHECK_FILE={path}: {e}"));
    validate_simcheck_json(&text, &path);
    assert!(
        text.contains("\"violations\": 0")
            && text.contains("\"mismatches\": 0")
            && text.contains("\"panics\": 0"),
        "{path}: smoke campaign must be clean"
    );
    println!("validated {path}");
}
