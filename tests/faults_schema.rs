//! Schema and identity checks for the `faults` experiment output.
//!
//! `results/faults.json` is an array of cell objects, one per
//! (fault rate, algorithm) pair, each carrying the reliability fields the
//! fault sweep is about: `rate`, `algorithm`, `delivery_ratio`, `stalled`,
//! `undelivered`, `reroutes`, `link_failures` plus the survivor latencies.
//! The vendored serde facade has no deserializer, so the external-file test
//! validates structurally (the same approach CI's grep-level checks take);
//! the in-process tests lock the schema and the fault-rate-0 identity at
//! the type level.

use wormcast::experiments::faults::{check_claims, FaultsParams};
use wormcast::prelude::*;

fn quick_params() -> FaultsParams {
    FaultsParams {
        side: 4,
        rates: vec![0.0, 0.05],
        length: 32,
        startup_us: 1.5,
        runs: 3,
        seed: 11,
    }
}

/// Field keys every cell of faults.json must carry, in serialization order.
const REQUIRED_KEYS: &[&str] = &[
    "\"nodes\":",
    "\"rate\":",
    "\"algorithm\":",
    "\"runs\":",
    "\"delivery_ratio\":",
    "\"stalled\":",
    "\"undelivered\":",
    "\"reroutes\":",
    "\"link_failures\":",
    "\"latency_us\":",
    "\"mean_node_latency_us\":",
];

fn validate_faults_json(text: &str, context: &str) {
    let text = text.trim();
    assert!(
        text.starts_with('[') && text.ends_with(']'),
        "{context}: expected a JSON array of cells"
    );
    let cells = text.matches("\"algorithm\":").count();
    assert!(cells > 0, "{context}: no cells");
    for key in REQUIRED_KEYS {
        assert_eq!(
            text.matches(key).count(),
            cells,
            "{context}: key {key} must appear exactly once per cell"
        );
    }
}

#[test]
fn generated_cells_serialize_with_the_full_schema() {
    let params = quick_params();
    let cells = params.run(&Runner::sequential()).cells;
    assert_eq!(cells.len(), 2 * 5, "rate x algorithm grid");
    let json = serde_json::to_string(&cells).expect("cells serialize");
    validate_faults_json(&json, "generated cells");
    let bad = check_claims(&cells);
    assert!(bad.is_empty(), "claims violated: {bad:?}");
}

#[test]
fn rate_zero_cells_are_lossless_and_fault_counters_stay_zero() {
    let params = quick_params();
    let cells = params.run(&Runner::sequential()).cells;
    for c in cells.iter().filter(|c| c.rate == 0.0) {
        assert_eq!(c.delivery_ratio, 1.0, "{}", c.algorithm);
        assert_eq!(
            (c.stalled, c.undelivered, c.reroutes, c.link_failures),
            (0, 0, 0, 0),
            "{}",
            c.algorithm
        );
    }
}

/// ci.sh runs the release `faults` binary with `--out`, then re-runs this
/// test with `WORMCAST_FAULTS_FILE` pointing at the produced JSON — the
/// end-to-end check that the shipped binary emits a schema-valid sweep.
#[test]
fn external_faults_file_validates_when_provided() {
    let Ok(path) = std::env::var("WORMCAST_FAULTS_FILE") else {
        return;
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read WORMCAST_FAULTS_FILE={path}: {e}"));
    validate_faults_json(&text, &path);
    println!(
        "validated {}: {} cells",
        path,
        text.matches("\"algorithm\":").count()
    );
}
