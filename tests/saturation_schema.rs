//! Schema checks for the `saturation` experiment output.
//!
//! `results/saturation.json` is an array of cell objects, one per
//! (algorithm, offered load) pair, each carrying the throughput fields the
//! saturation lab is about: `algorithm`, `offered`, `delivered`,
//! `mean_latency_ms`, `saturated` plus the raw completion counters. The
//! vendored serde facade has no deserializer, so the external-file test
//! validates structurally (the same approach CI's grep-level checks take);
//! the in-process test locks the schema at the type level and re-checks
//! the headline claims on a freshly generated quick sweep.

use wormcast::experiments::saturation::{check_claims, SaturationParams};
use wormcast::prelude::*;

/// Field keys every cell of saturation.json must carry, in serialization
/// order.
const REQUIRED_KEYS: &[&str] = &[
    "\"algorithm\":",
    "\"offered\":",
    "\"delivered\":",
    "\"mean_latency_ms\":",
    "\"saturated\":",
    "\"broadcasts_completed\":",
    "\"unicasts_delivered\":",
];

fn validate_saturation_json(text: &str, context: &str) {
    let text = text.trim();
    assert!(
        text.starts_with('[') && text.ends_with(']'),
        "{context}: expected a JSON array of cells"
    );
    let cells = text.matches("\"algorithm\":").count();
    assert!(cells > 0, "{context}: no cells");
    for key in REQUIRED_KEYS {
        assert_eq!(
            text.matches(key).count(),
            cells,
            "{context}: key {key} must appear exactly once per cell"
        );
    }
    for alg in ["\"DB\"", "\"AB\"", "\"QAB\""] {
        assert!(text.contains(alg), "{context}: the sweep must cover {alg}");
    }
}

#[test]
fn generated_cells_serialize_with_the_full_schema() {
    let params = SaturationParams::quick();
    let cells = params.run(&Runner::sequential()).cells;
    assert_eq!(cells.len(), 3 * params.loads.len(), "algorithm x load grid");
    let json = serde_json::to_string(&cells).expect("cells serialize");
    validate_saturation_json(&json, "generated cells");
    let bad = check_claims(&cells, &params);
    assert!(bad.is_empty(), "claims violated: {bad:?}");
}

/// ci.sh runs the release `saturation` binary with `--out`, then re-runs
/// this test with `WORMCAST_SATURATION_FILE` pointing at the produced JSON —
/// the end-to-end check that the shipped binary emits a schema-valid sweep.
#[test]
fn external_saturation_file_validates_when_provided() {
    let Ok(path) = std::env::var("WORMCAST_SATURATION_FILE") else {
        return;
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read WORMCAST_SATURATION_FILE={path}: {e}"));
    validate_saturation_json(&text, &path);
    println!(
        "validated {}: {} cells",
        path,
        text.matches("\"algorithm\":").count()
    );
}
