//! Determinism regression tests for the replication harness: the same
//! master seed must produce **byte-identical** serialized experiment
//! results no matter how many worker threads execute the replications.
//!
//! This is the contract that makes `--jobs N` safe to use for published
//! numbers: per-replication RNG streams (`SimRng::for_replication`) make
//! each replication a pure function of `(spec, seed, index)`, and the
//! harness folds outputs in index order, so thread scheduling can never
//! leak into a result. Serializing to JSON and comparing the bytes is the
//! strictest end-to-end form of that claim — it covers every field of
//! every cell, including float formatting.

use wormcast::experiments::{fig1, fig2};
use wormcast::prelude::*;

fn to_json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("serialize cells")
}

#[test]
fn fig1_results_are_byte_identical_across_job_counts() {
    let params = fig1::Fig1Params {
        sides: vec![4, 8],
        length: 64,
        startup_us: 1.5,
        runs: 5,
        seed: 2005,
    };
    let sequential = to_json(&fig1::run(&params, &Runner::new(1)));
    let parallel = to_json(&fig1::run(&params, &Runner::new(4)));
    assert_eq!(sequential, parallel, "fig1 output depends on --jobs");
}

#[test]
fn fig2_results_are_byte_identical_across_job_counts() {
    let params = fig2::Fig2Params {
        shapes: vec![[4, 4, 4], [4, 4, 16]],
        length: 64,
        startup_us: 1.5,
        runs: 6,
        broadcast_rate_per_node_per_ms: 1.0,
        seed: 2005,
    };
    let sequential = to_json(&fig2::run(&params, &Runner::new(1)));
    let parallel = to_json(&fig2::run(&params, &Runner::new(4)));
    assert_eq!(sequential, parallel, "fig2 output depends on --jobs");
}

#[test]
fn seed_changes_results_and_reruns_do_not() {
    let base = fig1::Fig1Params {
        sides: vec![4],
        length: 64,
        startup_us: 1.5,
        runs: 4,
        seed: 7,
    };
    let reseeded = fig1::Fig1Params {
        seed: 8,
        ..base.clone()
    };
    let runner = Runner::new(2);
    let a = to_json(&fig1::run(&base, &runner));
    let b = to_json(&fig1::run(&base, &runner));
    let c = to_json(&fig1::run(&reseeded, &runner));
    assert_eq!(a, b, "same seed must reproduce exactly");
    assert_ne!(a, c, "different seeds must actually change the draw");
}
