//! Determinism regression tests for the replication harness: the same
//! master seed must produce **byte-identical** serialized experiment
//! results no matter how many worker threads execute the replications.
//!
//! This is the contract that makes `--jobs N` safe to use for published
//! numbers: per-replication RNG streams (`SimRng::for_replication`) make
//! each replication a pure function of `(spec, seed, index)`, and the
//! harness folds outputs in index order, so thread scheduling can never
//! leak into a result. Serializing to JSON and comparing the bytes is the
//! strictest end-to-end form of that claim — it covers every field of
//! every cell, including float formatting.

use wormcast::experiments::telemetry::{events_ndjson, LabeledFrame, TelemetryReport};
use wormcast::experiments::{fig1, fig2};
use wormcast::prelude::*;
use wormcast::telemetry::LatencyHistogram;

fn to_json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("serialize cells")
}

/// The telemetry export with its only nondeterministic field (the
/// manifest's wall-clock duration) zeroed, ready for byte comparison.
fn telemetry_json(name: &str, frames: &[LabeledFrame]) -> String {
    let mut manifest = wormcast::telemetry::RunManifest::new(name);
    manifest.wall_ms = 0.0;
    to_json(&TelemetryReport::new(manifest, frames))
}

#[test]
fn fig1_results_are_byte_identical_across_job_counts() {
    let params = fig1::Fig1Params {
        sides: vec![4, 8],
        length: 64,
        startup_us: 1.5,
        runs: 5,
        seed: 2005,
    };
    let sequential = to_json(&params.run(&Runner::new(1)).cells);
    let parallel = to_json(&params.run(&Runner::new(4)).cells);
    assert_eq!(sequential, parallel, "fig1 output depends on --jobs");
}

#[test]
fn fig2_results_are_byte_identical_across_job_counts() {
    let params = fig2::Fig2Params {
        shapes: vec![[4, 4, 4], [4, 4, 16]],
        length: 64,
        startup_us: 1.5,
        runs: 6,
        broadcast_rate_per_node_per_ms: 1.0,
        seed: 2005,
    };
    let sequential = to_json(&params.run(&Runner::new(1)).cells);
    let parallel = to_json(&params.run(&Runner::new(4)).cells);
    assert_eq!(sequential, parallel, "fig2 output depends on --jobs");
}

#[test]
fn fig1_telemetry_is_byte_identical_across_job_counts() {
    let params = fig1::Fig1Params {
        sides: vec![4, 8],
        length: 64,
        startup_us: 1.5,
        runs: 5,
        seed: 2005,
    };
    let spec = TelemetrySpec::full();
    let (cells_1, frames_1) = params.run((&Runner::new(1), &spec)).into_parts();
    let (cells_4, frames_4) = params.run((&Runner::new(4), &spec)).into_parts();
    // The result JSON stays byte-identical with telemetry enabled — the
    // collector must never perturb the simulation it observes.
    assert_eq!(to_json(&cells_1), to_json(&cells_4));
    // The result JSON also matches an unobserved run bit for bit (zero-cost
    // contract: attaching sinks changes nothing downstream).
    assert_eq!(
        to_json(&cells_1),
        to_json(&params.run(&Runner::new(2)).cells)
    );
    // The telemetry export itself (histograms, heatmaps, merged in
    // replication order) is byte-identical across job counts.
    assert_eq!(
        telemetry_json("fig1", &frames_1),
        telemetry_json("fig1", &frames_4),
        "fig1 telemetry depends on --jobs"
    );
    // And so is the concatenated NDJSON event stream.
    let (nd_1, dropped_1) = events_ndjson(&frames_1);
    let (nd_4, dropped_4) = events_ndjson(&frames_4);
    assert_eq!(nd_1, nd_4, "fig1 event stream depends on --jobs");
    assert_eq!(dropped_1, dropped_4);
    assert!(!nd_1.is_empty(), "events were collected");
}

#[test]
fn fig2_telemetry_is_byte_identical_across_job_counts() {
    let params = fig2::Fig2Params {
        shapes: vec![[4, 4, 4], [4, 4, 16]],
        length: 64,
        startup_us: 1.5,
        runs: 6,
        broadcast_rate_per_node_per_ms: 1.0,
        seed: 2005,
    };
    let spec = TelemetrySpec::full();
    let (cells_1, frames_1) = params.run((&Runner::new(1), &spec)).into_parts();
    let (cells_4, frames_4) = params.run((&Runner::new(4), &spec)).into_parts();
    assert_eq!(to_json(&cells_1), to_json(&cells_4));
    assert_eq!(
        to_json(&cells_1),
        to_json(&params.run(&Runner::new(2)).cells)
    );
    assert_eq!(
        telemetry_json("fig2", &frames_1),
        telemetry_json("fig2", &frames_4),
        "fig2 telemetry depends on --jobs"
    );
    let (nd_1, _) = events_ndjson(&frames_1);
    let (nd_4, _) = events_ndjson(&frames_4);
    assert_eq!(nd_1, nd_4, "fig2 event stream depends on --jobs");
}

#[test]
fn histogram_merge_is_order_independent() {
    // The fixed bucket layout and integer moments make merges exactly
    // commutative and associative: any merge tree over the same set of
    // per-replication histograms yields identical counts and moments.
    let samples: Vec<u64> = (0..2000u64)
        .map(|i| i.wrapping_mul(2654435761) % 1_000_000)
        .collect();
    let parts: Vec<LatencyHistogram> = samples
        .chunks(137)
        .map(|chunk| {
            let mut h = LatencyHistogram::new();
            for &s in chunk {
                h.record_ps(s);
            }
            h
        })
        .collect();
    let forward = {
        let mut acc = LatencyHistogram::new();
        for p in &parts {
            acc.merge(p);
        }
        acc
    };
    let backward = {
        let mut acc = LatencyHistogram::new();
        for p in parts.iter().rev() {
            acc.merge(p);
        }
        acc
    };
    let pairwise = {
        // Balanced binary merge tree.
        let mut layer = parts.clone();
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|pair| {
                    let mut acc = pair[0].clone();
                    if let Some(b) = pair.get(1) {
                        acc.merge(b);
                    }
                    acc
                })
                .collect();
        }
        layer.pop().unwrap()
    };
    for other in [&backward, &pairwise] {
        assert_eq!(to_json(&forward.export()), to_json(&other.export()));
    }
    let direct = {
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record_ps(s);
        }
        h
    };
    assert_eq!(to_json(&forward.export()), to_json(&direct.export()));
}

#[test]
fn seed_changes_results_and_reruns_do_not() {
    let base = fig1::Fig1Params {
        sides: vec![4],
        length: 64,
        startup_us: 1.5,
        runs: 4,
        seed: 7,
    };
    let reseeded = fig1::Fig1Params {
        seed: 8,
        ..base.clone()
    };
    let runner = Runner::new(2);
    let a = to_json(&base.run(&runner).cells);
    let b = to_json(&base.run(&runner).cells);
    let c = to_json(&reseeded.run(&runner).cells);
    assert_eq!(a, b, "same seed must reproduce exactly");
    assert_ne!(a, c, "different seeds must actually change the draw");
}

#[test]
fn saturation_results_are_byte_identical_across_job_counts() {
    // The committed results/saturation.json is regenerated with --jobs N:
    // the QAB cells (queue-aware adaptive selection is exercised on every
    // adaptive leg and on the unicast background) must fold identically no
    // matter how replications are scheduled onto workers.
    let params = wormcast::experiments::saturation::SaturationParams::quick();
    let sequential = to_json(&params.run(&Runner::new(1)).cells);
    let parallel = to_json(&params.run(&Runner::new(4)).cells);
    assert_eq!(sequential, parallel, "saturation output depends on --jobs");
}

#[test]
fn qab_scheduled_scenario_is_byte_identical_across_job_counts() {
    // QAB under a *dynamic* scenario — a load ramp plus periodic link
    // degradation windows: queue depths now vary with time and with the
    // modulated channel speeds, so the queue-aware selection is exercised
    // under exactly the conditions where a scheduling-order leak would show
    // up. The serialized curve must not depend on --jobs.
    use wormcast::experiments::schedules::SchedulesParams;
    use wormcast::sim::{LinkModulation, LoadRamp, Schedule};
    let params = SchedulesParams {
        algorithms: vec![Algorithm::Qab],
        shape: [4, 4, 4],
        schedule: Schedule {
            ramp: Some(LoadRamp::linear(0.5, 2.5, 40.0)),
            modulation: Some(LinkModulation {
                period_us: 10.0,
                duty: 0.5,
                factor: 4,
                fraction: 0.25,
                windows: 4,
            }),
            ..Schedule::default()
        },
        runs: 3,
        ..SchedulesParams::default()
    };
    let sequential = to_json(&params.run(&Runner::new(1)).cells);
    let parallel = to_json(&params.run(&Runner::new(4)).cells);
    assert_eq!(
        sequential, parallel,
        "scheduled QAB output depends on --jobs"
    );
    // The scenario must actually deliver traffic (the ramp offered work).
    assert!(sequential.contains("\"algorithm\": \"QAB\""));
}

#[test]
fn qab_broadcast_is_role_equal_across_shard_counts() {
    // The sharded engine partitions the mesh along the last axis; QAB's
    // queue-aware arbitration reads per-channel backlog that the shards
    // maintain locally and tie-breaks by *global* channel index, so a
    // single-source broadcast must measure identically at every admissible
    // shard count — the delivery-role equality the --shards gate relies on.
    use wormcast::workload::{run_single_broadcast, run_single_broadcast_sharded};
    let mesh = wormcast::topology::Mesh::cube(8);
    let cfg = NetworkConfig::builder().startup_us(1.5).build().unwrap();
    for src in [NodeId(0), NodeId(77), NodeId(511)] {
        let base = run_single_broadcast(&mesh, cfg, Algorithm::Qab, src, 100);
        for shards in [1usize, 4] {
            let o = run_single_broadcast_sharded(&mesh, cfg, Algorithm::Qab, src, 100, shards)
                .expect("valid shard count");
            assert_eq!(
                o.network_latency_us.to_bits(),
                base.network_latency_us.to_bits(),
                "src {src:?} shards={shards}"
            );
            assert_eq!(
                o.mean_latency_us.to_bits(),
                base.mean_latency_us.to_bits(),
                "src {src:?} shards={shards}"
            );
            assert_eq!(o.cv.to_bits(), base.cv.to_bits(), "src {src:?}");
        }
    }
}
