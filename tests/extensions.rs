//! Integration tests for the future-directions extensions: torus ring
//! broadcast (simulated end-to-end), generalized-hypercube broadcast,
//! multicast schemes, and the schedule visualiser.

use wormcast::broadcast::{ghc_broadcast, render_all, um_steps, validate_multicast};
use wormcast::prelude::*;
use wormcast::topology::{GeneralizedHypercube, Torus};

#[test]
fn torus_simulation_agrees_with_analytic_model_across_shapes() {
    let cfg = NetworkConfig::builder()
        .release(ReleaseMode::AfterTailCrossing)
        .ports(6)
        .build()
        .expect("facility-queueing baseline is valid");
    for dims in [[4u16, 4, 4], [8, 8, 8], [3, 5, 7]] {
        let t = Torus::new(&dims);
        let o = run_torus_broadcast(&t, cfg, NodeId(1), 64);
        let rel = (o.network_latency_us - o.analytic_latency_us).abs() / o.analytic_latency_us;
        assert!(
            rel < 0.2,
            "{dims:?}: sim {} vs analytic {}",
            o.network_latency_us,
            o.analytic_latency_us
        );
    }
}

#[test]
fn torus_ring_broadcast_beats_every_mesh_algorithm() {
    // §4's conjecture, checked: on 512 nodes the 3-step ring scheme beats
    // all four mesh algorithms at L = 100 flits.
    let cfg = NetworkConfig::builder()
        .release(ReleaseMode::AfterTailCrossing)
        .build()
        .expect("facility-queueing baseline is valid");
    let torus = Torus::kary_ncube(8, 3);
    let t = run_torus_broadcast(&torus, cfg.with_ports(6), NodeId(0), 100);
    let mesh = Mesh::cube(8);
    for alg in Algorithm::ALL {
        let m = run_single_broadcast(&mesh, cfg, alg, NodeId(0), 100);
        assert!(
            t.network_latency_us < m.network_latency_us,
            "torus {} vs {} {}",
            t.network_latency_us,
            alg,
            m.network_latency_us
        );
    }
}

#[test]
fn ghc_broadcast_covers_mixed_radices() {
    for dims in [vec![2u16, 3, 4], vec![8, 8], vec![5, 5, 5]] {
        let g = GeneralizedHypercube::new(&dims);
        let s = ghc_broadcast(&g, NodeId(1));
        s.validate(&g).unwrap_or_else(|e| panic!("{dims:?}: {e:?}"));
        assert_eq!(s.steps(), dims.len() as u32);
    }
}

#[test]
fn multicast_schemes_agree_on_who_receives() {
    let mesh = Mesh::cube(4);
    let src = NodeId(7);
    let dests: Vec<NodeId> = vec![NodeId(0), NodeId(13), NodeId(42), NodeId(63)];
    for scheme in MulticastScheme::ALL {
        let s = scheme.schedule(&mesh, src, &dests);
        validate_multicast(&mesh, &s, &dests).unwrap_or_else(|e| panic!("{}: {e}", scheme.name()));
    }
}

#[test]
fn multicast_latency_orderings_by_density() {
    // Sparse: SP (one start-up) wins. Dense: CM (3 bounded steps) wins.
    let mesh = Mesh::cube(8);
    let cfg = NetworkConfig::paper_default();
    let src = NodeId(0);
    let sparse = random_destinations(&mesh, src, 5, 1);
    let dense = random_destinations(&mesh, src, 300, 2);
    let lat = |scheme: MulticastScheme, d: &[NodeId]| {
        run_single_multicast(&mesh, cfg, scheme, src, d, 32).latency_us
    };
    assert!(lat(MulticastScheme::Sp, &sparse) < lat(MulticastScheme::Um, &sparse));
    assert!(lat(MulticastScheme::Cm, &dense) < lat(MulticastScheme::Um, &dense));
    assert!(lat(MulticastScheme::Cm, &dense) < lat(MulticastScheme::Sp, &dense));
}

#[test]
fn um_steps_formula_matches_execution() {
    let mesh = Mesh::cube(4);
    let src = NodeId(0);
    for m in [1usize, 2, 7, 20, 63] {
        let dests = random_destinations(&mesh, src, m, m as u64);
        let s = MulticastScheme::Um.schedule(&mesh, src, &dests);
        assert_eq!(s.steps(), um_steps(m), "m={m}");
    }
}

#[test]
fn viz_renders_all_algorithms_without_panicking() {
    let mesh = Mesh::cube(4);
    for alg in Algorithm::ALL {
        let s = alg.schedule(&mesh, NodeId(21));
        let out = render_all(&mesh, &s);
        assert!(out.contains(&format!("{} after step 1/", alg.name())));
        // The last frame has no uncovered nodes.
        let last = out.split("\n\n").last().unwrap();
        assert!(!last.contains('.'), "{alg} leaves nodes uncovered:\n{last}");
    }
}

#[test]
fn fault_injection_reroutes_adaptive_broadcast_legs() {
    // AB's step-1 legs are adaptive: failing one channel on the default DOR
    // path of a leg must not stop the broadcast when a legal detour exists.
    use wormcast::routing::PlanarWestFirst;
    use wormcast::workload::BroadcastTracker;
    let mesh = Mesh::cube(4);
    let cfg = NetworkConfig::builder()
        .ports(6)
        .build()
        .expect("six ports are valid");
    let mut net = Network::new(mesh.clone(), cfg, Box::new(PlanarWestFirst));
    // Fail a Z channel no AB message needs (AB's Z relays run at corners):
    // an interior +Y link in the source plane that the adaptive legs can
    // dodge.
    let a = mesh.node_at(&Coord::xyz(2, 1, 1));
    let b = mesh.node_at(&Coord::xyz(2, 2, 1));
    net.fail_channel(mesh.channel_between(a, b).unwrap());
    let src = mesh.node_at(&Coord::xyz(2, 1, 1));
    let schedule = Algorithm::Ab.schedule(&mesh, src);
    let mut tracker = BroadcastTracker::new(&mesh, &schedule, OpId(0), 16);
    for spec in tracker.start(SimTime::ZERO) {
        net.inject_at(SimTime::ZERO, spec);
    }
    while !tracker.is_complete() {
        let Some(d) = net.next_delivery() else {
            panic!("AB broadcast stalled despite available detours");
        };
        for spec in tracker.on_delivery(&d) {
            net.inject_at(d.delivered_at, spec);
        }
    }
}
