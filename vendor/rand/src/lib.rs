//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! the minimal surface the simulator actually uses: [`RngCore`],
//! [`SeedableRng`] and the [`Rng`] extension (uniform ranges and unit-f64
//! draws). Semantics match rand 0.8 closely enough for a self-contained
//! simulation study: draws are deterministic per generator state, ranges use
//! unbiased rejection sampling, and `f64` draws have 53 random bits.

#![warn(missing_docs)]

/// The core of a random number generator: raw 32/64-bit output.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;
    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;
    /// Construct from a `u64`, expanded with SplitMix64 exactly as rand does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (Vigna), the same expansion rand_core uses.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly from a generator via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random bits into [0, 1), as rand's Standard does for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Bounds usable with [`Rng::gen_range`] (only `Range<T>` is needed here).
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Unbiased bounded draw: rejection-sample the top zone.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "gen_range: empty range");
                if s == <$t>::MIN && e == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                SampleRange::<$t>::sample_from(s..e + 1, rng)
            }
        }
    )*};
}

impl_sample_range_uint!(u16, u32, u64, usize, u8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// Convenience extension over [`RngCore`], mirroring rand's `Rng`.
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `rand::rngs` placeholder module for API compatibility.
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_covers_and_bounds() {
        let mut r = Counter(3);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = r.gen_range(0usize..7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut r = Counter(1);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
