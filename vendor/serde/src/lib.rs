//! Offline vendored serialization facade.
//!
//! The build environment has no crates.io access, so this crate provides the
//! slice of serde the workspace uses: `#[derive(Serialize, Deserialize)]`
//! and enough machinery for `serde_json::to_string_pretty`.
//!
//! Instead of serde's visitor-based data model, [`Serialize`] lowers a value
//! into a small JSON-shaped [`Value`] tree which `serde_json` then prints.
//! Enum representation matches serde's externally-tagged default: unit
//! variants serialize as their name, data variants as a one-entry map.
//! [`Deserialize`] is derived as a marker only — nothing in this workspace
//! parses JSON back into Rust types.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree — the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Lower a value into the [`Value`] data model.
pub trait Serialize {
    /// The value-tree representation of `self`.
    fn to_value(&self) -> Value;
}

/// Marker trait emitted by `#[derive(Deserialize)]`.
///
/// The workspace only ever writes JSON; deriving this keeps the familiar
/// `#[derive(Serialize, Deserialize)]` spelling compiling without carrying a
/// parser.
pub trait Deserialize {}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}

ser_unsigned!(u8, u16, u32, u64, usize);
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower() {
        assert_eq!(42u32.to_value(), Value::U64(42));
        assert_eq!((-3i32).to_value(), Value::I64(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
    }

    #[test]
    fn containers_lower() {
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::U64(1), Value::U64(2)])
        );
        assert_eq!(
            (1u8, "a").to_value(),
            Value::Array(vec![Value::U64(1), Value::Str("a".into())])
        );
        assert_eq!(
            [3u16; 2].to_value(),
            Value::Array(vec![Value::U64(3), Value::U64(3)])
        );
    }
}
