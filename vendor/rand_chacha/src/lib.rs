//! Offline vendored ChaCha-based RNG.
//!
//! Implements the real ChaCha stream cipher core (D. J. Bernstein) with 8
//! rounds and exposes the `rand_chacha 0.3` API surface the simulator uses:
//! [`ChaCha8Rng`] with `seed_from_u64`, `set_stream`, `set_word_pos`,
//! `get_stream` and `Clone`. Output is a deterministic function of
//! (key, stream, position); distinct streams over the same key are
//! independent keystreams, which is exactly the substream-derivation
//! property `wormcast_sim::SimRng` relies on.
//!
//! Note: this is an API-compatible reimplementation, not a bit-exact clone
//! of the rand_chacha crate's output (nothing in this workspace depends on
//! the upstream keystream ordering — only on determinism and stream
//! independence).

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// Number of ChaCha double-rounds (8-round variant → 4 double rounds).
const DOUBLE_ROUNDS: usize = 4;

/// The ChaCha8 random number generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// 256-bit key (words 4..12 of the ChaCha state).
    key: [u32; 8],
    /// 64-bit block counter (words 12..14).
    counter: u64,
    /// 64-bit stream id (words 14..16) — the substream selector.
    stream: u64,
    /// Current block's keystream, 16 words.
    block: [u32; 16],
    /// Next unconsumed word in `block`; 16 means "block exhausted".
    index: usize,
}

impl ChaCha8Rng {
    /// The stream id of this generator.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    /// Select an independent keystream over the same key. Resets the block
    /// position so the new stream starts from its origin.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.index = 16;
    }

    /// Seek to an absolute word position in the keystream (only position 0 —
    /// the stream origin — is needed by this workspace, but any position
    /// works).
    pub fn set_word_pos(&mut self, word_pos: u128) {
        self.counter = (word_pos / 16) as u64;
        let within = (word_pos % 16) as usize;
        if within == 0 {
            self.index = 16;
        } else {
            self.refill();
            self.index = within;
        }
    }

    /// Generate the next keystream block into `self.block`.
    fn refill(&mut self) {
        let mut x = [0u32; 16];
        // "expand 32-byte k" constants.
        x[0] = 0x6170_7865;
        x[1] = 0x3320_646e;
        x[2] = 0x7962_2d32;
        x[3] = 0x6b20_6574;
        x[4..12].copy_from_slice(&self.key);
        x[12] = self.counter as u32;
        x[13] = (self.counter >> 32) as u32;
        x[14] = self.stream as u32;
        x[15] = (self.stream >> 32) as u32;
        let input = x;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (o, i) in x.iter_mut().zip(input.iter()) {
            *o = o.wrapping_add(*i);
        }
        self.block = x;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

#[inline(always)]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn streams_diverge_and_reset() {
        let base = ChaCha8Rng::seed_from_u64(9);
        let mut s1 = base.clone();
        s1.set_stream(1);
        let mut s2 = base.clone();
        s2.set_stream(2);
        assert_ne!(s1.next_u64(), s2.next_u64());

        // Re-selecting a stream restarts it from the origin.
        let mut again = base.clone();
        again.set_stream(1);
        let mut fresh = base;
        fresh.set_stream(1);
        for _ in 0..10 {
            fresh.next_u64();
        }
        fresh.set_stream(1);
        assert_eq!(again.next_u64(), fresh.next_u64());
    }

    #[test]
    fn word_pos_seeks() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let first: Vec<u32> = (0..20).map(|_| a.next_u32()).collect();
        let mut b = ChaCha8Rng::seed_from_u64(5);
        b.set_word_pos(17);
        assert_eq!(b.next_u32(), first[17]);
    }

    #[test]
    fn chacha_quarter_round_vector() {
        // RFC 7539 §2.1.1 test vector for the quarter round.
        let mut x = [0u32; 16];
        x[0] = 0x11111111;
        x[1] = 0x01020304;
        x[2] = 0x9b8d6f43;
        x[3] = 0x01234567;
        quarter(&mut x, 0, 1, 2, 3);
        assert_eq!(x[0], 0xea2a92f4);
        assert_eq!(x[1], 0xcb1cf8ce);
        assert_eq!(x[2], 0x4581472e);
        assert_eq!(x[3], 0x5881c4bb);
    }
}
