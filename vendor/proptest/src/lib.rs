//! Offline vendored property-testing shim.
//!
//! Covers the slice of the `proptest` API this workspace uses: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, [`strategy::Just`], the `proptest!` macro with an
//! optional `#![proptest_config(..)]` header, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Compared to real proptest there is no shrinking and no failure
//! persistence: a failing case panics with the standard assertion message
//! and the deterministic per-test RNG makes every run reproduce it.

#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Generate a value, then generate from a strategy derived from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }
    }

    /// Always produces a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    /// The result of [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    assert!(s <= e, "empty range strategy");
                    let span = (e - s) as u64 + 1;
                    s + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy for `Vec`s of `element` values whose length is drawn from
    /// the `len` strategy (ranges of `usize` work directly).
    pub fn vec<S: Strategy, L: Strategy<Value = usize>>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// The result of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: Strategy<Value = usize>> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic case generation.

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` generated cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic generator: SplitMix64 keyed by the test name, so every
    /// run of a property replays the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG whose stream is a pure function of `label`.
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for _case in 0..config.cases {
                    let ($($pat,)+) = (
                        $($crate::strategy::Strategy::generate(&($strat), &mut rng),)+
                    );
                    // The case body runs in a closure so `prop_assume!` can
                    // abandon a case with `return`.
                    let case = move || $body;
                    case();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert within a property (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Abandon the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u16, u16)> {
        (1u16..=4, 0u16..10).prop_map(|(a, b)| (a, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 2u16..=6, y in 0u64..1000) {
            prop_assert!((2..=6).contains(&x));
            prop_assert!(y < 1000);
        }

        #[test]
        fn flat_map_chains((a, b) in pair().prop_flat_map(|(a, _)| (Just(a), 0u16..5))) {
            prop_assert!(a >= 1);
            prop_assert!(b < 5);
        }

        #[test]
        fn assume_abandons(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
