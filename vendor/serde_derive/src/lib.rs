//! Derive macros for the vendored serde facade.
//!
//! Implemented directly on `proc_macro` token trees (the offline build has
//! no `syn`/`quote`). Supports the shapes this workspace derives on:
//! named-field structs, tuple structs (newtype and wider), unit structs, and
//! enums with unit / tuple / struct variants. Generic types are not
//! supported (none of the workspace's serialized types are generic).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What one parsed type looks like.
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derive the vendored `serde::Serialize` (value-tree lowering).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => {
            // Newtype structs are transparent, matching serde's default.
            "serde::Serialize::to_value(&self.0)".to_string()
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match &v.kind {
                    VariantKind::Unit => format!(
                        "{name}::{v} => serde::Value::Str(\"{v}\".to_string()),",
                        v = v.name
                    ),
                    VariantKind::Tuple(1) => format!(
                        "{name}::{v}(f0) => serde::Value::Object(vec![(\"{v}\".to_string(), serde::Serialize::to_value(f0))]),",
                        v = v.name
                    ),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Serialize::to_value(f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({binds}) => serde::Value::Object(vec![(\"{v}\".to_string(), serde::Value::Array(vec![{items}]))]),",
                            v = v.name,
                            binds = binds.join(", "),
                            items = items.join(", ")
                        )
                    }
                    VariantKind::Struct(fields) => {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => serde::Value::Object(vec![(\"{v}\".to_string(), serde::Value::Object(vec![{entries}]))]),",
                            v = v.name,
                            entries = entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{ {body} }}\n}}"
    )
    .parse()
    .expect("serde_derive: generated impl must parse")
}

/// Derive the vendored `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, _) = parse_item(input);
    format!("impl serde::Deserialize for {name} {{}}")
        .parse()
        .expect("serde_derive: generated impl must parse")
}

/// Parse `[attrs] [vis] (struct|enum) Name [body]` into a name and shape.
fn parse_item(input: TokenStream) -> (String, Shape) {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let kw = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic types are not supported");
    }
    match kw.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (name, Shape::NamedStruct(named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                (name, Shape::TupleStruct(tuple_arity(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => (name, Shape::UnitStruct),
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (name, Shape::Enum(variants(g.stream())))
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

/// Skip leading `#[...]` attributes and a `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                iter.next();
                if matches!(
                    iter.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    iter.next();
                }
            }
            _ => return,
        }
    }
}

/// Field names of a named-field body: `[attrs] [vis] name : Type , ...`.
fn named_fields(body: TokenStream) -> Vec<String> {
    let mut iter = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(i)) => fields.push(i.to_string()),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected ':' after field, got {other:?}"),
        }
        skip_type_until_comma(&mut iter);
    }
    fields
}

/// Count the fields of a tuple body (top-level, angle-bracket-aware commas).
fn tuple_arity(body: TokenStream) -> usize {
    let mut iter = body.into_iter().peekable();
    let mut arity = 0;
    loop {
        skip_attrs_and_vis(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        arity += 1;
        skip_type_until_comma(&mut iter);
    }
    arity
}

/// Consume tokens of one type, stopping after a top-level `,` or at the end.
/// Tracks `<`/`>` depth so generic arguments (`Vec<(u32, usize)>`,
/// `HashMap<K, V>`) don't split early.
fn skip_type_until_comma(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle: i32 = 0;
    for tt in iter.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
    }
}

/// Parse enum variants: `[attrs] Name [(..) | {..}] , ...`.
fn variants(body: TokenStream) -> Vec<Variant> {
    let mut iter = body.into_iter().peekable();
    let mut out = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = named_fields(g.stream());
                iter.next();
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = tuple_arity(g.stream());
                iter.next();
                VariantKind::Tuple(n)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        let mut angle = 0i32;
        while let Some(tt) = iter.peek() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    iter.next();
                    break;
                }
                _ => {}
            }
            iter.next();
        }
        out.push(Variant { name, kind });
    }
    out
}
