//! Offline vendored JSON printer for the vendored serde facade.
//!
//! Supports the one operation the workspace uses: pretty-printing any
//! `serde::Serialize` value (`to_string_pretty`), plus compact `to_string`
//! for convenience. Output matches serde_json's pretty format (two-space
//! indent, `": "` separators) so existing result files stay diffable.

#![warn(missing_docs)]
#![allow(clippy::redundant_closure, clippy::too_many_arguments)]

use serde::{Serialize, Value};

/// Serialization error (the value-tree printer is total, so this never
/// occurs; the type exists for API compatibility).
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            |o, it, i, d| write_value(o, it, i, d),
            '[',
            ']',
        ),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            entries.len(),
            indent,
            depth,
            |o, (k, v), i, d| {
                write_escaped(o, k);
                o.push(':');
                if i.is_some() {
                    o.push(' ');
                }
                write_value(o, v, i, d);
            },
            '{',
            '}',
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl Iterator<Item = T>,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
    open: char,
    close: char,
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

/// JSON number formatting: serde_json prints floats via Grisu (shortest
/// round-trip), which Rust's `{}` also produces; non-finite values have no
/// JSON representation and print as `null`, matching serde_json.
fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{x}");
    out.push_str(&s);
    // serde_json always marks floats as floats; keep `1.0` distinct from `1`.
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_arrays() {
        assert_eq!(to_string(&vec![1u8, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_string_pretty(&vec![1u8, 2]).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(to_string(&"a\"b\n").unwrap(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn objects_pretty_print() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Array(vec![])),
        ]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": 1,\n  \"b\": []\n}"
        );
    }
}
