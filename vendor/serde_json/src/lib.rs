//! Offline vendored JSON printer and parser for the vendored serde facade.
//!
//! Supports the operations the workspace uses: pretty-printing any
//! `serde::Serialize` value (`to_string_pretty`), compact `to_string`, and
//! parsing JSON text back into the [`Value`] tree ([`from_str`]) for the
//! request paths that must read configuration (the vendored facade has no
//! typed deserializer; callers decode the `Value` by hand). Output matches
//! serde_json's pretty format (two-space indent, `": "` separators) so
//! existing result files stay diffable.

#![warn(missing_docs)]
#![allow(clippy::redundant_closure, clippy::too_many_arguments)]

use serde::{Serialize, Value};

/// Error from [`from_str`]: byte offset plus a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset the parse failed at.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document into a [`Value`] tree.
///
/// Accepts the full JSON grammar (objects, arrays, strings with escapes,
/// numbers, booleans, null). Integers without fraction or exponent land in
/// `Value::U64`/`Value::I64`; everything else numeric becomes `Value::F64`.
/// Trailing whitespace is allowed, trailing content is an error.
///
/// # Errors
/// Returns a [`ParseError`] locating the first offending byte.
pub fn from_str(text: &str) -> std::result::Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> std::result::Result<(), ParseError> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> std::result::Result<Value, ParseError> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> std::result::Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> std::result::Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> std::result::Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> std::result::Result<String, ParseError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are rejected rather than
                            // combined; nothing in this workspace emits them.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            s.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    let start = self.pos;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| b != b'"' && b != b'\\' && b >= 0x20)
                    {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    s.push_str(chunk);
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> std::result::Result<Value, ParseError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.bytes.get(self.pos) == Some(&b'.') {
            float = true;
            self.pos += 1;
            while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| ParseError {
            offset: start,
            message: format!("invalid number `{text}`"),
        })
    }
}

/// Serialization error (the value-tree printer is total, so this never
/// occurs; the type exists for API compatibility).
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            |o, it, i, d| write_value(o, it, i, d),
            '[',
            ']',
        ),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            entries.len(),
            indent,
            depth,
            |o, (k, v), i, d| {
                write_escaped(o, k);
                o.push(':');
                if i.is_some() {
                    o.push(' ');
                }
                write_value(o, v, i, d);
            },
            '{',
            '}',
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl Iterator<Item = T>,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
    open: char,
    close: char,
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

/// JSON number formatting: serde_json prints floats via Grisu (shortest
/// round-trip), which Rust's `{}` also produces; non-finite values have no
/// JSON representation and print as `null`, matching serde_json.
fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{x}");
    out.push_str(&s);
    // serde_json always marks floats as floats; keep `1.0` distinct from `1`.
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_arrays() {
        assert_eq!(to_string(&vec![1u8, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_string_pretty(&vec![1u8, 2]).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(to_string(&"a\"b\n").unwrap(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn objects_pretty_print() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Array(vec![])),
        ]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": 1,\n  \"b\": []\n}"
        );
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" false ").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap(), Value::U64(42));
        assert_eq!(from_str("-7").unwrap(), Value::I64(-7));
        assert_eq!(from_str("0.25").unwrap(), Value::F64(0.25));
        assert_eq!(from_str("1e3").unwrap(), Value::F64(1000.0));
        assert_eq!(from_str("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parse_containers_and_nesting() {
        assert_eq!(
            from_str("[1, 2, 3]").unwrap(),
            Value::Array(vec![Value::U64(1), Value::U64(2), Value::U64(3)])
        );
        assert_eq!(from_str("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(from_str("{}").unwrap(), Value::Object(vec![]));
        let v = from_str("{\"a\": {\"b\": [1, {\"c\": null}]}, \"d\": -1}").unwrap();
        let Value::Object(entries) = &v else {
            panic!("object expected")
        };
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "a");
        assert_eq!(entries[1], ("d".to_string(), Value::I64(-1)));
    }

    #[test]
    fn parse_string_escapes() {
        assert_eq!(
            from_str("\"a\\\"b\\n\\u0041\"").unwrap(),
            Value::Str("a\"b\nA".into())
        );
    }

    #[test]
    fn printed_values_round_trip() {
        let v = Value::Object(vec![
            (
                "x".into(),
                Value::Array(vec![Value::U64(1), Value::F64(2.5)]),
            ),
            ("y".into(), Value::Str("a\"b".into())),
            ("z".into(), Value::I64(-3)),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(from_str(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "1 2", "nul", "\"x", "[1,]", "{,}", "--1",
        ] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }
}
