//! Offline vendored benchmarking shim.
//!
//! Implements the slice of the `criterion` API this workspace's benches use:
//! `Criterion`, `benchmark_group` with `sample_size` / `throughput` /
//! `bench_function` / `bench_with_input` / `finish`, `Bencher::iter`,
//! `BenchmarkId::new`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: each sample times one invocation of the closure with
//! `std::time::Instant`; `sample_size` samples are taken after one warm-up
//! invocation. Mean / min / max per benchmark are printed to stdout and the
//! full result set is written as JSON to `target/criterion-report-<bin>.json`
//! (override the path with the `CRITERION_OUT_JSON` environment variable) so
//! baselines can be recorded without the real criterion's HTML machinery.
//!
//! Beyond the upstream API, [`Bencher::record_extra`] attaches auxiliary
//! per-sample measurements (e.g. barrier-wait nanoseconds scraped off a
//! runtime); their means land in an `"extra"` object on the JSON record.

#![warn(missing_docs)]

use std::time::Instant;

pub use std::hint::black_box;

/// Identifies one benchmark within a group: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Benchmark id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Work performed per iteration, for derived rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples_ns: Vec<u128>,
    sample_size: usize,
    extras: std::collections::BTreeMap<&'static str, Vec<f64>>,
}

impl Bencher {
    /// Time `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples_ns.clear();
        self.extras.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples_ns.push(start.elapsed().as_nanos());
        }
    }

    /// Attach an auxiliary per-sample measurement (e.g. barrier wait read
    /// off the runtime after a timed invocation). Averaged over the samples
    /// recorded under `key` and emitted in the JSON record's `"extra"`
    /// object. Values recorded during the warm-up call are discarded along
    /// with its timing.
    pub fn record_extra(&mut self, key: &'static str, value: f64) {
        self.extras.entry(key).or_default().push(value);
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
struct Record {
    id: String,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
    throughput: Option<Throughput>,
    extra: Vec<(&'static str, f64)>,
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    records: Vec<Record>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            records: Vec::new(),
        }
    }
}

impl Criterion {
    /// Construct a driver; harness CLI arguments (e.g. `--bench`, filter
    /// strings from `cargo bench`) are accepted and ignored.
    pub fn from_args() -> Self {
        Criterion::default()
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Run an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let sample_size = self.default_sample_size;
        self.run_one(id.into().id, sample_size, None, f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: String,
        sample_size: usize,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        let mut b = Bencher {
            samples_ns: Vec::new(),
            sample_size,
            extras: std::collections::BTreeMap::new(),
        };
        f(&mut b);
        let extra: Vec<(&'static str, f64)> = b
            .extras
            .iter()
            .map(|(k, vs)| (*k, vs.iter().sum::<f64>() / vs.len().max(1) as f64))
            .collect();
        let n = b.samples_ns.len().max(1) as f64;
        let mean = b.samples_ns.iter().sum::<u128>() as f64 / n;
        let min = b.samples_ns.iter().min().copied().unwrap_or(0) as f64;
        let max = b.samples_ns.iter().max().copied().unwrap_or(0) as f64;
        println!(
            "bench {:<48} mean {:>12}  min {:>12}  max {:>12}{}",
            id,
            fmt_ns(mean),
            fmt_ns(min),
            fmt_ns(max),
            match throughput {
                Some(Throughput::Elements(e)) => {
                    format!("  ({:.0} elem/s)", e as f64 / (mean / 1e9))
                }
                Some(Throughput::Bytes(by)) => {
                    format!("  ({:.0} B/s)", by as f64 / (mean / 1e9))
                }
                None => String::new(),
            }
        );
        self.records.push(Record {
            id,
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
            samples: b.samples_ns.len(),
            throughput,
            extra,
        });
    }

    /// Write the JSON report. Called automatically by `criterion_main!`.
    pub fn final_summary(&self) {
        let path = std::env::var("CRITERION_OUT_JSON").unwrap_or_else(|_| {
            let stem = std::env::args()
                .next()
                .and_then(|p| {
                    std::path::Path::new(&p)
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                })
                .unwrap_or_else(|| "bench".to_string());
            format!("target/criterion-report-{stem}.json")
        });
        let mut out = String::from("[\n");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let tput = match r.throughput {
                Some(Throughput::Elements(e)) => format!("{{\"elements\": {e}}}"),
                Some(Throughput::Bytes(b)) => format!("{{\"bytes\": {b}}}"),
                None => "null".to_string(),
            };
            let extra = if r.extra.is_empty() {
                String::new()
            } else {
                let body: Vec<String> = r
                    .extra
                    .iter()
                    .map(|(k, v)| format!("{k:?}: {v:.1}"))
                    .collect();
                format!(", \"extra\": {{{}}}", body.join(", "))
            };
            out.push_str(&format!(
                "  {{\"id\": {id:?}, \"mean_ns\": {mean:.1}, \"min_ns\": {min:.1}, \"max_ns\": {max:.1}, \"samples\": {n}, \"throughput\": {tput}{extra}}}",
                id = r.id,
                mean = r.mean_ns,
                min = r.min_ns,
                max = r.max_ns,
                n = r.samples,
            ));
        }
        out.push_str("\n]\n");
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("criterion (vendored): could not write {path}: {e}");
        } else {
            println!("criterion (vendored): report written to {path}");
        }
    }
}

/// A named group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        let n = self.sample_size.unwrap_or(self.parent.default_sample_size);
        let t = self.throughput;
        self.parent.run_one(full, n, t, f);
        self
    }

    /// Run a benchmark with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group (retained for API compatibility).
    pub fn finish(&mut self) {}
}

/// Bundle benchmark functions into a group callable from `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generate `main` running each group and writing the final report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extras_average_and_render() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(2).bench_function("extra", |b| {
                b.iter(|| 1 + 1);
                b.record_extra("barrier_wait_ns", 10.0);
                b.record_extra("barrier_wait_ns", 30.0);
            });
            g.finish();
        }
        assert_eq!(c.records[0].extra, vec![("barrier_wait_ns", 20.0)]);
    }

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(3)
                .throughput(Throughput::Elements(100))
                .bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
                    b.iter(|| (0..n).sum::<u64>())
                });
            g.bench_function("plain", |b| b.iter(|| 2 + 2));
            g.finish();
        }
        assert_eq!(c.records.len(), 2);
        assert_eq!(c.records[0].id, "demo/sum/100");
        assert_eq!(c.records[0].samples, 3);
        assert!(c.records[0].mean_ns >= c.records[0].min_ns);
    }
}
