//! # wormcast — broadcast algorithms for wormhole-switched meshes
//!
//! A Rust reproduction of *"On the Performance of Broadcast Algorithms in
//! Interconnection Networks"* (Al-Dubai & Ould-Khaoua, ICPP Workshops 2005):
//! the coded-path-routing broadcast algorithms **DB** and **AB**, the
//! classical baselines **RD** (Recursive Doubling) and **EDN** (Extended
//! Dominating Node), and the event-driven wormhole-mesh simulator used to
//! compare them at both the network level (broadcast latency) and the node
//! level (coefficient of variation of arrival times) under a wide range of
//! traffic loads.
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |-----------|-------|----------|
//! | [`sim`] | `wormcast-sim` | discrete-event kernel, RNG streams, distributions |
//! | [`topology`] | `wormcast-topology` | mesh / torus / generalized hypercube, partitioning |
//! | [`routing`] | `wormcast-routing` | DOR, turn models, coded-path routing (CPR) |
//! | [`network`] | `wormcast-network` | the wormhole network engine |
//! | [`broadcast`] | `wormcast-broadcast` | RD, EDN, DB, AB schedules |
//! | [`workload`] | `wormcast-workload` | broadcast executor, traffic generators |
//! | [`stats`] | `wormcast-stats` | CV, batch means, confidence intervals |
//! | [`telemetry`] | `wormcast-telemetry` | latency histograms, heatmaps, NDJSON events, provenance |
//! | [`experiments`] | `wormcast-experiments` | the paper's figures and tables |
//!
//! ## Quickstart
//!
//! ```
//! use wormcast::prelude::*;
//!
//! // An 8x8x8 wormhole mesh with the paper's Cray-T3D-era constants.
//! let mesh = Mesh::cube(8);
//! let cfg = NetworkConfig::paper_default();
//!
//! // Broadcast 100 flits from node 0 with the paper's DB algorithm.
//! let outcome = run_single_broadcast(&mesh, cfg, Algorithm::Db, NodeId(0), 100);
//! assert!(outcome.network_latency_us > 0.0);
//! assert!(outcome.cv < 0.5);
//!
//! // DB needs 4 message-passing steps regardless of network size.
//! assert_eq!(Algorithm::Db.theoretical_steps(&mesh), 4);
//! ```

pub use wormcast_broadcast as broadcast;
pub use wormcast_experiments as experiments;
pub use wormcast_network as network;
pub use wormcast_routing as routing;
pub use wormcast_sim as sim;
pub use wormcast_stats as stats;
pub use wormcast_telemetry as telemetry;
pub use wormcast_topology as topology;
pub use wormcast_workload as workload;

/// The names most programs need, in one import.
///
/// Covers the unified simulation API (`Simulation`,
/// `NetworkConfig::builder()`), the [`Experiment`](crate::experiments::Experiment)
/// trait over the paper's figures, the four broadcast algorithms (via
/// [`Algorithm`](crate::broadcast::Algorithm)), the telemetry
/// [`Collector`](crate::telemetry::Collector), and the workload drivers.
/// Every example under `examples/` compiles from this import alone.
pub mod prelude {
    pub use wormcast_broadcast::{
        ghc_broadcast, torus_ring_broadcast, Algorithm, BroadcastSchedule, ExtSchedule, RoutingKind,
    };
    pub use wormcast_experiments::{Experiment, Observation, RunOutput};
    pub use wormcast_network::{
        ConfigError, Delivery, FaultPlan, FaultSpec, MessageSpec, Network, NetworkConfig,
        NetworkConfigBuilder, OpId, ReleaseMode, Route, Simulation, SimulationBuilder, TraceKind,
    };
    pub use wormcast_routing::{
        dor_path, CodedPath, ControlField, DimensionOrdered, Path, RoutingFunction, WestFirst,
    };
    pub use wormcast_sim::{SimDuration, SimRng, SimTime};
    pub use wormcast_stats::{summarize, BatchMeans, OnlineStats};
    pub use wormcast_telemetry::{
        Collector, LatencyHistogram, Observe, RunManifest, TelemetryFrame, TelemetrySpec,
    };
    pub use wormcast_topology::{
        Coord, GeneralizedHypercube, Mesh, NodeId, Plane, Sign, Topology, Torus,
    };
    pub use wormcast_workload::{
        random_destinations, run_averaged_broadcasts, run_contended_broadcasts,
        run_faulty_broadcast, run_mixed_traffic, run_single_broadcast, run_single_multicast,
        run_torus_broadcast, BroadcastRep, BroadcastTracker, FaultRep, MixedConfig,
        MulticastScheme, RepContext, Replication, Runner,
    };
}
